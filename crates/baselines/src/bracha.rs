//! Bracha's asynchronous ⌊(n−1)/3⌋-resilient binary consensus (PODC
//! 1984) — the first baseline of the paper's evaluation.
//!
//! Every logical message is sent through [`ReliableBroadcast`], which is
//! what gives the protocol its O(n³) message complexity and prevents
//! Byzantine equivocation. Rounds have three steps:
//!
//! 1. broadcast `(k, 1, v)`; await `n − f` valid step-1 messages; adopt
//!    the majority value.
//! 2. broadcast `(k, 2, v)`; await `n − f`; if more than `n/2` carry the
//!    same `w`, adopt `w`, else adopt `⊥` (no super-majority witnessed).
//! 3. broadcast `(k, 3, v)`; await `n − f`; with at least `2f + 1`
//!    non-`⊥` `w`: **decide** `w`; with at least `f + 1`: adopt `w`;
//!    otherwise flip the local coin.
//!
//! Messages carry no signatures (the channels are authenticated — IPSec
//! AH in the paper, per-link HMAC in the reproduction's adapter), but a
//! *validation* filter discards values a correct process could not have
//! computed (Bracha's "validated messages"; see `Bracha::is_valid` in the
//! source).
//! Validation is monotone in delivered evidence, so rejected messages
//! are kept pending and re-examined as evidence accumulates.

use crate::gate::legacy_codec_enabled;
use crate::rbc::{RbcMessage, RbcView, ReliableBroadcast, Tag};
use bytes::arena::EncodeArena;
use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// A step value: a binary value or `⊥` (step 3 only).
#[derive(Clone, Copy, Debug, Eq, PartialEq, Hash)]
pub enum StepValue {
    /// Binary 0.
    Zero,
    /// Binary 1.
    One,
    /// No super-majority witnessed (legal only in step 3).
    Null,
}

impl StepValue {
    fn from_bit(bit: bool) -> StepValue {
        if bit {
            StepValue::One
        } else {
            StepValue::Zero
        }
    }

    fn as_bit(self) -> Option<bool> {
        match self {
            StepValue::Zero => Some(false),
            StepValue::One => Some(true),
            StepValue::Null => None,
        }
    }

    fn encode(self) -> u8 {
        match self {
            StepValue::Zero => 0,
            StepValue::One => 1,
            StepValue::Null => 2,
        }
    }

    fn decode(byte: u8) -> Option<StepValue> {
        match byte {
            0 => Some(StepValue::Zero),
            1 => Some(StepValue::One),
            2 => Some(StepValue::Null),
            _ => None,
        }
    }

    /// The opposite binary value (used by the evaluation's Byzantine
    /// strategy); `Null` maps to itself.
    pub fn flipped(self) -> StepValue {
        match self {
            StepValue::Zero => StepValue::One,
            StepValue::One => StepValue::Zero,
            StepValue::Null => StepValue::Null,
        }
    }
}

/// Output of feeding one network message to the engine.
#[derive(Debug, Default)]
pub struct BrachaOutput {
    /// Wire messages to send to every process (via the reliable
    /// point-to-point transport).
    pub send: Vec<Bytes>,
    /// Set when this call made the process decide.
    pub newly_decided: Option<bool>,
}

/// Tally index for a [`StepValue`] (`Zero`, `One`, `Null` in order).
#[inline]
fn sv_idx(value: StepValue) -> usize {
    match value {
        StepValue::Zero => 0,
        StepValue::One => 1,
        StepValue::Null => 2,
    }
}

/// Dense-table sentinel: no value accepted from this sender yet.
const NO_VOTE: u8 = u8::MAX;

/// Per-step accepted-vote tables, in one of two interchangeable
/// layouts (selected by `TURQUOIS_LEGACY_STORE`; see [`crate::gate`]).
#[derive(Debug)]
enum Accepted {
    /// The original per-step sender→value hash maps, retained as the
    /// differential oracle.
    Legacy([HashMap<usize, StepValue>; 3]),
    /// Dense per-step sender-indexed byte tables (node ids are dense
    /// `0..n`; entries hold `StepValue::encode` or [`NO_VOTE`]), grown
    /// on demand — one byte per sender instead of a hash-map entry.
    Compact([Vec<u8>; 3]),
}

#[derive(Debug)]
struct RoundState {
    /// Validated step values per step (1-3), per sender.
    accepted: Accepted,
    /// Incremental per-(step, value) sender tallies over `accepted`
    /// (indexed `[step-1][sv_idx]`), so `is_valid`'s majority probes and
    /// `try_fire`'s quorum counts are O(1) instead of rescanning the
    /// tables on every pending message.
    counts: [[usize; 3]; 3],
    /// Distinct senders accepted per step (replaces the retired
    /// `accepted[step].len()` read in `try_fire`).
    totals: [usize; 3],
    /// Steps already advanced past.
    fired: [bool; 3],
}

impl Default for RoundState {
    fn default() -> Self {
        RoundState::with_legacy(crate::gate::legacy_store_enabled())
    }
}

impl RoundState {
    /// Creates an empty round with an explicit layout choice (used by
    /// differential tests to exercise both layouts in one process).
    fn with_legacy(legacy: bool) -> Self {
        let accepted = if legacy {
            Accepted::Legacy(Default::default())
        } else {
            Accepted::Compact(Default::default())
        };
        RoundState {
            accepted,
            counts: [[0; 3]; 3],
            totals: [0; 3],
            fired: [false; 3],
        }
    }

    /// Records `origin`'s step value if it is the first one accepted
    /// from that sender at `step` (later values from the same sender
    /// are ignored, preserving first-wins semantics).
    fn accept(&mut self, step: u8, origin: usize, value: StepValue) {
        let s = (step - 1) as usize;
        let fresh = match &mut self.accepted {
            Accepted::Legacy(maps) => {
                if let std::collections::hash_map::Entry::Vacant(e) = maps[s].entry(origin) {
                    e.insert(value);
                    true
                } else {
                    false
                }
            }
            Accepted::Compact(tables) => {
                let table = &mut tables[s];
                if table.len() <= origin {
                    table.resize(origin + 1, NO_VOTE);
                }
                if table[origin] == NO_VOTE {
                    table[origin] = value.encode();
                    true
                } else {
                    false
                }
            }
        };
        if fresh {
            self.counts[s][sv_idx(value)] += 1;
            self.totals[s] += 1;
        }
    }

    /// Senders whose accepted value at `step` equals `value`. O(1).
    fn count(&self, step: u8, value: StepValue) -> usize {
        debug_assert_eq!(
            self.counts[(step - 1) as usize][sv_idx(value)],
            self.scan_count(step, value)
        );
        self.counts[(step - 1) as usize][sv_idx(value)]
    }

    /// Distinct senders accepted at `step`. O(1).
    fn total(&self, step: u8) -> usize {
        debug_assert_eq!(self.totals[(step - 1) as usize], self.scan_total(step));
        self.totals[(step - 1) as usize]
    }

    /// The retired scan `count` replaced; kept as the `debug_assert!`
    /// oracle (and exercised by the proptest). Layout-agnostic.
    fn scan_count(&self, step: u8, value: StepValue) -> usize {
        let s = (step - 1) as usize;
        match &self.accepted {
            Accepted::Legacy(maps) => maps[s].values().filter(|&&x| x == value).count(),
            Accepted::Compact(tables) => tables[s]
                .iter()
                .filter(|&&b| b == value.encode())
                .count(),
        }
    }

    /// The retired length scan `total` replaced (debug oracle).
    fn scan_total(&self, step: u8) -> usize {
        let s = (step - 1) as usize;
        match &self.accepted {
            Accepted::Legacy(maps) => maps[s].len(),
            Accepted::Compact(tables) => tables[s].iter().filter(|&&b| b != NO_VOTE).count(),
        }
    }
}

/// One process's Bracha consensus engine.
#[derive(Debug)]
pub struct Bracha {
    n: usize,
    f: usize,
    me: usize,
    rbc: ReliableBroadcast,
    round: u32,
    step: u8,
    value: StepValue,
    decision: Option<bool>,
    rounds: HashMap<u32, RoundState>,
    /// Delivered-but-not-yet-valid messages, re-examined as evidence
    /// grows.
    pending: Vec<(Tag, StepValue)>,
    rng: StdRng,
    /// Total RBC deliveries (diagnostics).
    deliveries: u64,
    /// Pooled encode scratch for outgoing wire messages (arena codec;
    /// unused when `TURQUOIS_LEGACY_CODEC` selects per-message
    /// builders).
    arena: EncodeArena,
}

impl Bracha {
    /// Creates the engine for process `me`, proposing `proposal`.
    ///
    /// # Panics
    ///
    /// Panics unless `3f < n` and `me < n`.
    pub fn new(n: usize, f: usize, me: usize, proposal: bool, seed: u64) -> Self {
        Bracha {
            n,
            f,
            me,
            rbc: ReliableBroadcast::new(n, f, me),
            round: 1,
            step: 1,
            value: StepValue::from_bit(proposal),
            decision: None,
            rounds: HashMap::new(),
            pending: Vec::new(),
            rng: StdRng::seed_from_u64(seed ^ 0xb2ac_4a84),
            deliveries: 0,
            arena: EncodeArena::new(),
        }
    }

    /// This process's id.
    pub fn id(&self) -> usize {
        self.me
    }

    /// Current round.
    pub fn round(&self) -> u32 {
        self.round
    }

    /// Current step within the round (1–3).
    pub fn step(&self) -> u8 {
        self.step
    }

    /// The decision, once reached.
    pub fn decision(&self) -> Option<bool> {
        self.decision
    }

    /// Total reliable-broadcast deliveries so far.
    pub fn deliveries(&self) -> u64 {
        self.deliveries
    }

    /// Deterministic estimate of the engine's consensus-store footprint
    /// in bytes: 64 per live round plus one byte per accepted vote and
    /// 8 per pending message. Reads the O(1) per-round tallies (the
    /// round map holds a GC-bounded handful of entries), is a function
    /// of logical content only — never of map capacities — and is
    /// identical in both vote-table layouts. Excludes the RBC layer.
    pub fn store_bytes(&self) -> usize {
        let votes: usize = self
            .rounds
            .values()
            .map(|rs| rs.totals.iter().sum::<usize>())
            .sum();
        self.rounds.len() * 64 + votes + 8 * self.pending.len()
    }

    /// Starts the protocol: broadcast the round-1 step-1 value.
    pub fn on_start(&mut self) -> BrachaOutput {
        let mut out = BrachaOutput::default();
        self.send_current(&mut out);
        out
    }

    /// Processes a wire message from link-layer sender `from`.
    ///
    /// Under the default arena codec the wire bytes are parsed into a
    /// borrowed [`RbcView`] (no payload copy) and outgoing messages
    /// are encoded through the engine's pooled [`EncodeArena`];
    /// `TURQUOIS_LEGACY_CODEC` selects the owned decode/encode pair as
    /// the byte-identical differential oracle (DESIGN.md §13).
    pub fn on_message(&mut self, from: usize, bytes: &[u8]) -> BrachaOutput {
        let mut out = BrachaOutput::default();
        let deliver = if legacy_codec_enabled() {
            let Some(msg) = RbcMessage::decode(bytes) else {
                return out;
            };
            let rbc_out = self.rbc.on_message(from, &msg);
            for m in rbc_out.send {
                out.send.push(m.encode());
            }
            rbc_out.deliver
        } else {
            let Some(view) = RbcView::parse(bytes) else {
                return out;
            };
            let rbc_out = self.rbc.on_view(from, &view);
            for m in rbc_out.send {
                out.send.push(self.arena.encode_with(|b| m.encode_into(b)));
            }
            rbc_out.deliver
        };
        for (tag, payload) in deliver {
            self.deliveries += 1;
            if payload.len() != 1 {
                continue;
            }
            let Some(value) = StepValue::decode(payload[0]) else {
                continue;
            };
            if tag.step < 1 || tag.step > 3 {
                continue;
            }
            // Null is legal only in step 3.
            if value == StepValue::Null && tag.step != 3 {
                continue;
            }
            self.pending.push((tag, value));
        }
        self.drain_pending(&mut out);
        out
    }

    /// Moves pending messages that have become valid into the accepted
    /// sets and fires any step transitions, to fixpoint.
    fn drain_pending(&mut self, out: &mut BrachaOutput) {
        loop {
            let mut progressed = false;
            let mut still_pending = Vec::new();
            for (tag, value) in std::mem::take(&mut self.pending) {
                if self.is_valid(tag, value) {
                    let rs = self.rounds.entry(tag.round).or_default();
                    rs.accept(tag.step, tag.origin, value);
                    progressed = true;
                } else {
                    still_pending.push((tag, value));
                }
            }
            self.pending = still_pending;
            while self.try_fire(out) {
                progressed = true;
            }
            if !progressed {
                break;
            }
        }
    }

    /// Bracha's message validation: would a correct process ever send
    /// this? Monotone in accepted evidence.
    fn is_valid(&self, tag: Tag, value: StepValue) -> bool {
        let majority_feasible = |round: u32, step: usize, v: StepValue, threshold: usize| {
            self.rounds
                .get(&round)
                .map(|rs| rs.count(step as u8, v) >= threshold)
                .unwrap_or(false)
        };
        match tag.step {
            1 => {
                if tag.round == 1 {
                    return true; // initial proposals are free
                }
                // A round-(k) step-1 binary value must have appeared in
                // round k−1 step 3 (adoption), or a coin flip must have
                // been plausible (some ⊥ witnessed there).
                majority_feasible(tag.round - 1, 3, value, 1)
                    || majority_feasible(tag.round - 1, 3, StepValue::Null, 1)
            }
            2 => {
                // The claimed majority value must be adoptable from some
                // (n−f)-subset of step-1 senders — under the step-1
                // tie-break (ties go to One): Zero must strictly
                // outnumber One (⌊(n−f)/2⌋+1 senders), while One also
                // wins a tie (⌈(n−f)/2⌉ suffice). When n−f is odd the
                // thresholds coincide; when it is even a correct process
                // can adopt One from a tie, and demanding the strict
                // majority would pend its step-2 message forever —
                // deadlocking the round once fewer than n−f step-2
                // messages can validate.
                let need = match value {
                    StepValue::One => (self.n - self.f).div_ceil(2),
                    _ => (self.n - self.f) / 2 + 1,
                };
                majority_feasible(tag.round, 1, value, need)
            }
            3 => match value {
                // A binary step-3 value claims a > n/2 step-2 majority.
                StepValue::Zero | StepValue::One => {
                    majority_feasible(tag.round, 2, value, self.n / 2 + 1)
                }
                // ⊥ claims the absence of a super-majority. A correct
                // ⊥-sender accepted n−f step-2 messages with no value
                // above n/2, which forces at least one of *each* value in
                // its view — evidence that must eventually reach us too.
                // (Monotone, and it bars Byzantine ⊥ in unanimous runs.)
                StepValue::Null => {
                    majority_feasible(tag.round, 2, StepValue::Zero, 1)
                        && majority_feasible(tag.round, 2, StepValue::One, 1)
                }
            },
            _ => false,
        }
    }

    /// Fires the current step's transition if its quorum is ready.
    fn try_fire(&mut self, out: &mut BrachaOutput) -> bool {
        let round = self.round;
        let step = self.step;
        let need = self.n - self.f;
        let rs = self.rounds.entry(round).or_default();
        if rs.fired[(step - 1) as usize] {
            return false;
        }
        if rs.total(step) < need {
            return false;
        }
        rs.fired[(step - 1) as usize] = true;
        // O(1) reads from the incremental tallies; `Null` counts are
        // never needed by the transitions below.
        let zero = rs.count(step, StepValue::Zero);
        let one = rs.count(step, StepValue::One);
        match step {
            1 => {
                // Majority value (ties to One, mirroring the Turquois
                // tie-break for comparability).
                self.value = if zero > one {
                    StepValue::Zero
                } else {
                    StepValue::One
                };
                self.step = 2;
            }
            2 => {
                let w = [(StepValue::Zero, zero), (StepValue::One, one)]
                    .into_iter()
                    .find(|&(_, c)| 2 * c > self.n)
                    .map(|(v, _)| v);
                self.value = w.unwrap_or(StepValue::Null);
                self.step = 3;
            }
            _ => {
                let (best, best_count) = if zero > one {
                    (StepValue::Zero, zero)
                } else {
                    (StepValue::One, one)
                };
                if best_count >= 2 * self.f + 1 {
                    if self.decision.is_none() {
                        self.decision = best.as_bit();
                        out.newly_decided = self.decision;
                    }
                    self.value = best;
                } else if best_count >= self.f + 1 {
                    self.value = best;
                } else {
                    self.value = StepValue::from_bit(self.rng.gen_bool(0.5));
                }
                self.step = 1;
                self.round += 1;
                // GC: evidence older than the previous round is dead.
                if self.round > 2 {
                    let floor = self.round - 2;
                    self.rounds.retain(|&r, _| r >= floor);
                    self.rbc.prune_rounds_below(floor);
                    self.pending.retain(|(t, _)| t.round >= floor);
                }
            }
        }
        self.send_current(out);
        true
    }

    fn send_current(&mut self, out: &mut BrachaOutput) {
        let payload = Bytes::copy_from_slice(&[self.value.encode()]);
        let rbc_out = self.rbc.broadcast(self.round, self.step, payload);
        let legacy = legacy_codec_enabled();
        for m in rbc_out.send {
            out.send.push(if legacy {
                m.encode()
            } else {
                self.arena.encode_with(|b| m.encode_into(b))
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Lossless full-information network: every sent message reaches
    /// every process (including the sender). Returns decisions.
    fn run_lossless(engines: &mut [Bracha], max_iters: usize) -> Vec<Option<bool>> {
        let n = engines.len();
        let mut queue: Vec<(usize, Bytes)> = Vec::new();
        for e in engines.iter_mut() {
            let out = e.on_start();
            let me = e.id();
            queue.extend(out.send.into_iter().map(|b| (me, b)));
        }
        let mut iters = 0;
        while let Some((from, bytes)) = queue.pop() {
            iters += 1;
            if iters > max_iters {
                panic!("message budget exceeded — likely livelock");
            }
            for to in 0..n {
                let out = engines[to].on_message(from, &bytes);
                queue.extend(out.send.into_iter().map(|b| (to, b)));
            }
            if engines.iter().all(|e| e.decision().is_some()) {
                break;
            }
        }
        engines.iter().map(|e| e.decision()).collect()
    }

    fn group(n: usize, f: usize, proposals: &[bool], seed: u64) -> Vec<Bracha> {
        (0..n)
            .map(|me| Bracha::new(n, f, me, proposals[me % proposals.len()], seed + me as u64))
            .collect()
    }

    #[test]
    fn unanimous_decides_proposed_value() {
        for bit in [false, true] {
            let mut engines = group(4, 1, &[bit], 1);
            let decisions = run_lossless(&mut engines, 2_000_000);
            assert!(
                decisions.iter().all(|d| *d == Some(bit)),
                "bit={bit}: {decisions:?}"
            );
        }
    }

    #[test]
    fn divergent_proposals_agree() {
        for seed in 0..4u64 {
            let mut engines = group(4, 1, &[true, false], seed * 7);
            let decisions = run_lossless(&mut engines, 5_000_000);
            let first = decisions[0].expect("lossless run decides");
            assert!(
                decisions.iter().all(|d| *d == Some(first)),
                "seed={seed}: {decisions:?}"
            );
        }
    }

    #[test]
    fn larger_group_unanimous() {
        let mut engines = group(7, 2, &[true], 3);
        let decisions = run_lossless(&mut engines, 5_000_000);
        assert!(decisions.iter().all(|d| *d == Some(true)));
    }

    #[test]
    fn crashed_minority_does_not_block() {
        // f = 1 process silent from the start (n = 4): the rest decide.
        let mut engines = group(4, 1, &[true], 9);
        let n = 4;
        let mut queue: Vec<(usize, Bytes)> = Vec::new();
        for e in engines.iter_mut().take(3) {
            let out = e.on_start();
            let me = e.id();
            queue.extend(out.send.into_iter().map(|b| (me, b)));
        }
        let mut iters = 0;
        while let Some((from, bytes)) = queue.pop() {
            iters += 1;
            assert!(iters < 2_000_000, "livelock");
            for to in 0..n - 1 {
                // process 3 crashed: receives nothing
                let out = engines[to].on_message(from, &bytes);
                queue.extend(out.send.into_iter().map(|b| (to, b)));
            }
            if engines[..3].iter().all(|e| e.decision().is_some()) {
                break;
            }
        }
        assert!(engines[..3].iter().all(|e| e.decision() == Some(true)));
    }

    #[test]
    fn byzantine_value_flip_cannot_break_unanimous_validity() {
        // n = 4, f = 1. Process 3 is Byzantine: it reliably-broadcasts
        // the flipped value at steps 1 and 2, ⊥ at step 3 (the paper's
        // §7.2 strategy). Correct processes all propose `true` and must
        // decide `true`.
        let n = 4;
        let f = 1;
        let mut engines: Vec<Bracha> = (0..3).map(|me| Bracha::new(n, f, me, true, me as u64)).collect();
        // The Byzantine node runs its own RBC engine to participate in
        // echo/ready (it wants its lies delivered).
        let mut evil_rbc = ReliableBroadcast::new(n, f, 3);
        let mut queue: Vec<(usize, Bytes)> = Vec::new();
        for e in engines.iter_mut() {
            let out = e.on_start();
            let me = e.id();
            queue.extend(out.send.into_iter().map(|b| (me, b)));
        }
        // Byzantine lies for round 1 (it stays in round 1; that is the
        // worst it can do for a unanimous round-1 decision).
        for (step, value) in [
            (1u8, StepValue::Zero), // flipped
            (2, StepValue::Zero),   // flipped
            (3, StepValue::Null),
        ] {
            let out = evil_rbc.broadcast(1, step, Bytes::copy_from_slice(&[value.encode()]));
            queue.extend(out.send.into_iter().map(|m| (3usize, m.encode())));
        }
        let mut iters = 0;
        while let Some((from, bytes)) = queue.pop() {
            iters += 1;
            assert!(iters < 2_000_000, "livelock");
            // Correct processes receive everything; the Byzantine node's
            // RBC engine also participates (echoes/readies).
            if let Some(msg) = RbcMessage::decode(&bytes) {
                let out = evil_rbc.on_message(from, &msg);
                queue.extend(out.send.into_iter().map(|m| (3usize, m.encode())));
            }
            for to in 0..3 {
                let out = engines[to].on_message(from, &bytes);
                queue.extend(out.send.into_iter().map(|b| (to, b)));
            }
            if engines.iter().all(|e| e.decision().is_some()) {
                break;
            }
        }
        for e in &engines {
            assert_eq!(e.decision(), Some(true), "validity must hold");
        }
    }

    #[test]
    fn even_quorum_tie_adoption_recovers_after_partition() {
        // n = 5, f = 1 ⇒ n − f = 4 is even: a process firing step 1 on
        // a 2–2 tie adopts One (the tie-break). Step-2 validation must
        // accept the resulting One with only ⌈(n−f)/2⌉ = 2 step-1
        // One-senders in existence, or the round deadlocks. Emulated
        // 4|1 partition: traffic crossing the split is buffered and
        // released at the heal (what a reliable transport does), so the
        // majority fires step 1 on exactly the four majority proposals
        // {0, 1, 0, 1} — the tie. Proposals overall are 3×Zero, 2×One:
        // under the pre-fix strict-majority validation the four tie-
        // adopted step-2 Ones could never validate and nobody reached
        // n − f step-2 acceptances — the queue drained undecided.
        let n = 5;
        let mut engines = group(n, 1, &[false, true, false, true, false], 5);
        let mut queue: Vec<(usize, usize, Bytes)> = Vec::new();
        let mut held: Vec<(usize, usize, Bytes)> = Vec::new();
        for e in engines.iter_mut() {
            let out = e.on_start();
            let me = e.id();
            for b in out.send {
                for to in 0..n {
                    queue.push((me, to, b.clone()));
                }
            }
        }
        let mut healed = false;
        let mut iters = 0;
        while !engines.iter().all(|e| e.decision().is_some()) {
            // Heal once the majority side has run its course: decided
            // (fixed validation) or wedged with the network quiescent
            // (the pre-fix deadlock).
            if !healed
                && (queue.is_empty() || engines[..4].iter().all(|e| e.decision().is_some()))
            {
                healed = true;
                queue.append(&mut held);
            }
            let Some((from, to, bytes)) = queue.pop() else {
                panic!("deadlock: network quiescent after heal, undecided");
            };
            iters += 1;
            assert!(iters < 5_000_000, "livelock");
            if !healed && (from == 4) != (to == 4) {
                held.push((from, to, bytes));
                continue;
            }
            let out = engines[to].on_message(from, &bytes);
            for b in out.send {
                for dst in 0..n {
                    queue.push((to, dst, b.clone()));
                }
            }
        }
        let first = engines[0].decision().expect("all decided");
        assert!(
            engines.iter().all(|e| e.decision() == Some(first)),
            "agreement after heal"
        );
    }

    #[test]
    fn step_value_helpers() {
        assert_eq!(StepValue::from_bit(true), StepValue::One);
        assert_eq!(StepValue::One.as_bit(), Some(true));
        assert_eq!(StepValue::Null.as_bit(), None);
        assert_eq!(StepValue::Zero.flipped(), StepValue::One);
        assert_eq!(StepValue::Null.flipped(), StepValue::Null);
        assert_eq!(StepValue::decode(3), None);
        for v in [StepValue::Zero, StepValue::One, StepValue::Null] {
            assert_eq!(StepValue::decode(v.encode()), Some(v));
        }
    }

    #[test]
    fn garbage_bytes_ignored() {
        let mut e = Bracha::new(4, 1, 0, true, 1);
        let out = e.on_message(1, b"garbage");
        assert!(out.send.is_empty());
        assert_eq!(out.newly_decided, None);
    }

    /// The arena codec and the legacy owned codec drive byte-identical
    /// full runs: same wire bytes out of every call, same decisions.
    #[test]
    fn codec_paths_are_observationally_identical() {
        fn run(legacy: bool) -> (Vec<(usize, Vec<u8>)>, Vec<Option<bool>>) {
            crate::gate::set_legacy_codec(legacy);
            let n = 4;
            let mut engines = group(n, 1, &[true, false], 21);
            let mut wire: Vec<(usize, Vec<u8>)> = Vec::new();
            let mut queue: Vec<(usize, Bytes)> = Vec::new();
            for e in engines.iter_mut() {
                let out = e.on_start();
                let me = e.id();
                queue.extend(out.send.into_iter().map(|b| (me, b)));
            }
            let mut iters = 0;
            while let Some((from, bytes)) = queue.pop() {
                iters += 1;
                assert!(iters < 2_000_000, "livelock");
                for to in 0..n {
                    let out = engines[to].on_message(from, &bytes);
                    for b in out.send {
                        wire.push((to, b.to_vec()));
                        queue.push((to, b));
                    }
                }
                if engines.iter().all(|e| e.decision().is_some()) {
                    break;
                }
            }
            crate::gate::set_legacy_codec(false);
            (wire, engines.iter().map(|e| e.decision()).collect())
        }
        let arena = run(false);
        let legacy = run(true);
        assert_eq!(arena.0.len(), legacy.0.len(), "wire message counts");
        assert_eq!(arena.0, legacy.0, "wire bytes");
        assert_eq!(arena.1, legacy.1, "decisions");
        assert!(arena.1[0].is_some(), "the run decided");
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(128))]

        /// [`RoundState`] incremental tallies vs. the retired scan
        /// oracle under arbitrary interleavings of accepts (including
        /// duplicate senders — first value wins — and conflicting
        /// values) and round garbage collection — and the two layouts
        /// against each other on every query.
        #[test]
        fn round_state_tallies_match_scan_oracle(
            ops in proptest::collection::vec(
                // (round, step sel, origin, value sel, gc trigger)
                (1u32..6, 1u8..4, 0usize..7, 0u8..3, 0u8..16),
                1..80,
            ),
        ) {
            let mut compact: std::collections::HashMap<u32, RoundState> =
                std::collections::HashMap::new();
            let mut legacy: std::collections::HashMap<u32, RoundState> =
                std::collections::HashMap::new();
            for (round, step, origin, v, gc) in ops {
                if gc == 0 {
                    // The engine's GC drops whole rounds below a floor.
                    compact.retain(|&r, _| r >= round);
                    legacy.retain(|&r, _| r >= round);
                } else {
                    let value = [StepValue::Zero, StepValue::One, StepValue::Null][v as usize];
                    compact
                        .entry(round)
                        .or_insert_with(|| RoundState::with_legacy(false))
                        .accept(step, origin, value);
                    legacy
                        .entry(round)
                        .or_insert_with(|| RoundState::with_legacy(true))
                        .accept(step, origin, value);
                }
                for (&round, rs) in &compact {
                    let lrs = &legacy[&round];
                    for step in 1u8..=3 {
                        proptest::prop_assert_eq!(rs.total(step), rs.scan_total(step));
                        proptest::prop_assert_eq!(rs.total(step), lrs.total(step));
                        for value in [StepValue::Zero, StepValue::One, StepValue::Null] {
                            proptest::prop_assert_eq!(
                                rs.count(step, value),
                                rs.scan_count(step, value)
                            );
                            proptest::prop_assert_eq!(
                                rs.count(step, value),
                                lrs.count(step, value)
                            );
                            proptest::prop_assert_eq!(
                                lrs.count(step, value),
                                lrs.scan_count(step, value)
                            );
                        }
                    }
                }
            }
        }
    }
}
