//! ABBA — Asynchronous Binary Byzantine Agreement (Cachin, Kursawe,
//! Shoup: *Random oracles in Constantinople*, J. Cryptology 2005) — the
//! second baseline of the paper's evaluation.
//!
//! ABBA trades messages for cryptography: O(n²) messages and a constant
//! expected number of rounds, but every message carries threshold
//! signature shares and justifications whose verification is RSA-class
//! work. Each round:
//!
//! 1. **Pre-vote** for a value `b`, justified by: nothing (round 1), a
//!    threshold signature on `pre-vote(r−1, b)` ("hard"), or a threshold
//!    signature on `main-vote(r−1, abstain)` plus a coin proof ("coin").
//!    The message carries the party's signature share on
//!    `pre-vote(r, b)`.
//! 2. After `n − f` valid pre-votes: **main-vote** — for `b` when the
//!    pre-votes were unanimous (justified by combining their shares into
//!    a threshold signature), or `abstain` when mixed (justified by one
//!    valid pre-vote for each value). Carries a share on
//!    `main-vote(r, v)` and the party's coin share for round `r`.
//! 3. After `n − f` valid main-votes: unanimous `b` → **decide** `b`
//!    (and help for one more round); some `b` → hard pre-vote `b` for
//!    `r + 1`; all abstain → combine the shared coin and coin-pre-vote
//!    its value.
//!
//! Threshold cryptography comes from [`turquois_crypto::threshold`] (see
//! `DESIGN.md` §4 for the substitution argument): a dual-threshold setup
//! with signature threshold `n − f` and coin threshold `f + 1`. The CPU
//! cost of the real RSA-class operations is charged by the simulator
//! through the [`CryptoOps`] counters every call returns.

use crate::gate::legacy_codec_enabled;
use bytes::arena::EncodeArena;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use turquois_crypto::memo::MemoCache;
use turquois_crypto::sha256::{Digest, DIGEST_LEN};
use turquois_crypto::threshold::{
    CoinProof, CoinShare, PartyKey, SharePublic, SigShare, ThresholdSignature,
};

/// Memo-cache key for a threshold verification: `(kind, statement
/// round, value, party, tag)`. The `kind` discriminant (pre-vote share,
/// combined pre-vote signature, abstain signature, coin proof,
/// main-vote share, coin share) keeps equal tags for different
/// statements from ever colliding; `party` is 0 for combined objects.
/// The cache is per-engine — [`SharePublic`] is shared by every party
/// in a run, so a cache there would leak state across nodes.
type AbbaVerifyKey = (u8, u32, u8, u16, Digest);

/// Bound on memoized verification outcomes per engine (Byzantine
/// parties can mint unlimited distinct invalid shares; eviction only
/// costs a recomputation).
const ABBA_MEMO_CAP: usize = 4096;

/// Counters of cryptographic work performed during one call, for the
/// simulator's CPU cost accounting.
#[derive(Clone, Copy, Debug, Default, Eq, PartialEq)]
pub struct CryptoOps {
    /// Threshold signature/coin shares generated.
    pub share_signs: u32,
    /// Threshold shares verified.
    pub share_verifies: u32,
    /// Combined threshold signatures / coin proofs verified.
    pub sig_verifies: u32,
    /// Total shares fed into combination operations.
    pub shares_combined: u32,
}

impl CryptoOps {
    /// Component-wise sum.
    pub fn add(&mut self, other: CryptoOps) {
        self.share_signs += other.share_signs;
        self.share_verifies += other.share_verifies;
        self.sig_verifies += other.sig_verifies;
        self.shares_combined += other.shares_combined;
    }
}

/// A main-vote value.
#[derive(Clone, Copy, Debug, Eq, PartialEq, Hash)]
pub enum MainVoteValue {
    /// Vote for 0.
    Zero,
    /// Vote for 1.
    One,
    /// No unanimous pre-vote witnessed.
    Abstain,
}

impl MainVoteValue {
    fn from_bit(bit: bool) -> Self {
        if bit {
            MainVoteValue::One
        } else {
            MainVoteValue::Zero
        }
    }

    fn as_bit(self) -> Option<bool> {
        match self {
            MainVoteValue::Zero => Some(false),
            MainVoteValue::One => Some(true),
            MainVoteValue::Abstain => None,
        }
    }

    fn encode(self) -> u8 {
        match self {
            MainVoteValue::Zero => 0,
            MainVoteValue::One => 1,
            MainVoteValue::Abstain => 2,
        }
    }

    fn decode(b: u8) -> Option<Self> {
        match b {
            0 => Some(MainVoteValue::Zero),
            1 => Some(MainVoteValue::One),
            2 => Some(MainVoteValue::Abstain),
            _ => None,
        }
    }
}

/// Justification of a pre-vote.
#[derive(Clone, Debug, PartialEq)]
pub enum PreVoteJust {
    /// Round 1: the initial proposal needs no justification.
    Round1,
    /// A threshold signature on `pre-vote(r−1, b)`.
    Hard(ThresholdSignature),
    /// A threshold signature on `main-vote(r−1, abstain)` plus the coin
    /// proof whose value the pre-vote must match.
    Coin {
        /// Signature proving round `r−1` ended all-abstain.
        abstain_sig: ThresholdSignature,
        /// Transferable proof of the round-`r−1` coin.
        proof: CoinProof,
    },
}

/// A pre-vote as embedded inside an abstain justification.
#[derive(Clone, Debug, PartialEq)]
pub struct EmbeddedPreVote {
    /// The pre-voted value.
    pub value: bool,
    /// The voter's share on `pre-vote(r, value)` (binds the party id).
    pub share: SigShare,
    /// The pre-vote's own justification.
    pub just: PreVoteJust,
}

/// Justification of a main-vote.
#[derive(Clone, Debug, PartialEq)]
pub enum MainVoteJust {
    /// `main-vote(r, b)`: a threshold signature on `pre-vote(r, b)`.
    ForValue(ThresholdSignature),
    /// `abstain`: one valid pre-vote for each value.
    Abstain {
        /// A pre-vote for 0.
        zero: EmbeddedPreVote,
        /// A pre-vote for 1.
        one: EmbeddedPreVote,
    },
}

/// An ABBA wire message.
#[derive(Clone, Debug, PartialEq)]
pub enum AbbaMessage {
    /// Step 1 of a round.
    PreVote {
        /// Round number (1-based).
        round: u32,
        /// The value pre-voted.
        value: bool,
        /// Share on `pre-vote(round, value)`.
        share: SigShare,
        /// Why this pre-vote is legal.
        just: PreVoteJust,
    },
    /// Step 2 of a round.
    MainVote {
        /// Round number.
        round: u32,
        /// The value main-voted.
        value: MainVoteValue,
        /// Share on `main-vote(round, value)`.
        share: SigShare,
        /// The party's coin share for this round (eager release).
        coin_share: CoinShare,
        /// Why this main-vote is legal.
        just: MainVoteJust,
    },
}

fn pv_statement(round: u32, value: bool) -> Vec<u8> {
    format!("abba/pv/{round}/{}", value as u8).into_bytes()
}

fn mv_statement(round: u32, value: MainVoteValue) -> Vec<u8> {
    format!("abba/mv/{round}/{}", value.encode()).into_bytes()
}

fn coin_tag(round: u32) -> Vec<u8> {
    format!("abba/coin/{round}").into_bytes()
}

// ---- wire codec -----------------------------------------------------

const KIND_PREVOTE: u8 = 1;
const KIND_MAINVOTE: u8 = 2;

/// Encoded size of a [`SigShare`]: party id plus tag.
const SIG_SHARE_LEN: usize = 2 + DIGEST_LEN;

fn put_digest<B: BufMut>(buf: &mut B, d: &Digest) {
    buf.put_slice(d.as_bytes());
}

fn get_digest(buf: &mut &[u8]) -> Option<Digest> {
    if buf.len() < DIGEST_LEN {
        return None;
    }
    let mut out = [0u8; DIGEST_LEN];
    out.copy_from_slice(&buf[..DIGEST_LEN]);
    buf.advance(DIGEST_LEN);
    Some(Digest(out))
}

fn put_sig_share<B: BufMut>(buf: &mut B, s: &SigShare) {
    buf.put_u16(s.party as u16);
    put_digest(buf, &s.tag);
}

fn get_sig_share(buf: &mut &[u8]) -> Option<SigShare> {
    if buf.len() < 2 {
        return None;
    }
    let party = buf.get_u16() as usize;
    let tag = get_digest(buf)?;
    Some(SigShare { party, tag })
}

/// Encoded size of a [`PreVoteJust`] (discriminant byte included).
fn prevote_just_len(just: &PreVoteJust) -> usize {
    match just {
        PreVoteJust::Round1 => 1,
        PreVoteJust::Hard(_) => 1 + DIGEST_LEN,
        PreVoteJust::Coin { .. } => 1 + DIGEST_LEN + 1 + DIGEST_LEN,
    }
}

fn put_prevote_just<B: BufMut>(buf: &mut B, just: &PreVoteJust) {
    match just {
        PreVoteJust::Round1 => buf.put_u8(0),
        PreVoteJust::Hard(sig) => {
            buf.put_u8(1);
            put_digest(buf, &sig.tag);
        }
        PreVoteJust::Coin { abstain_sig, proof } => {
            buf.put_u8(2);
            put_digest(buf, &abstain_sig.tag);
            buf.put_u8(proof.value as u8);
            put_digest(buf, &proof.tag);
        }
    }
}

fn get_prevote_just(buf: &mut &[u8]) -> Option<PreVoteJust> {
    if buf.is_empty() {
        return None;
    }
    let kind = buf.get_u8();
    match kind {
        0 => Some(PreVoteJust::Round1),
        1 => Some(PreVoteJust::Hard(ThresholdSignature {
            tag: get_digest(buf)?,
        })),
        2 => {
            let abstain_sig = ThresholdSignature {
                tag: get_digest(buf)?,
            };
            if buf.is_empty() {
                return None;
            }
            let value_byte = buf.get_u8();
            if value_byte > 1 {
                return None;
            }
            let proof = CoinProof {
                value: value_byte == 1,
                tag: get_digest(buf)?,
            };
            Some(PreVoteJust::Coin { abstain_sig, proof })
        }
        _ => None,
    }
}

/// Encoded size of an [`EmbeddedPreVote`].
fn embedded_len(pv: &EmbeddedPreVote) -> usize {
    1 + SIG_SHARE_LEN + prevote_just_len(&pv.just)
}

fn put_embedded<B: BufMut>(buf: &mut B, pv: &EmbeddedPreVote) {
    buf.put_u8(pv.value as u8);
    put_sig_share(buf, &pv.share);
    put_prevote_just(buf, &pv.just);
}

fn get_embedded(buf: &mut &[u8]) -> Option<EmbeddedPreVote> {
    if buf.is_empty() {
        return None;
    }
    let value_byte = buf.get_u8();
    if value_byte > 1 {
        return None;
    }
    let share = get_sig_share(buf)?;
    let just = get_prevote_just(buf)?;
    Some(EmbeddedPreVote {
        value: value_byte == 1,
        share,
        just,
    })
}

impl AbbaMessage {
    /// Encodes for transmission.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.encoded_len());
        self.encode_into(&mut buf);
        buf.freeze()
    }

    /// The exact wire length [`AbbaMessage::encode`] produces, computed
    /// arithmetically — no buffer is built. The adapter's RSA airtime
    /// model uses this instead of a throwaway encode.
    pub fn encoded_len(&self) -> usize {
        match self {
            AbbaMessage::PreVote { just, .. } => {
                1 + 4 + 1 + SIG_SHARE_LEN + prevote_just_len(just)
            }
            AbbaMessage::MainVote { just, .. } => {
                1 + 4
                    + 1
                    + SIG_SHARE_LEN
                    + 2
                    + DIGEST_LEN
                    + 1
                    + match just {
                        MainVoteJust::ForValue(_) => DIGEST_LEN,
                        MainVoteJust::Abstain { zero, one } => {
                            embedded_len(zero) + embedded_len(one)
                        }
                    }
            }
        }
    }

    /// Writes the wire encoding into any [`BufMut`] — the same bytes
    /// [`AbbaMessage::encode`] produces, without forcing a fresh
    /// buffer (arena callers pass [`bytes::arena::EncodeArena::buf`]).
    pub fn encode_into<B: BufMut>(&self, buf: &mut B) {
        match self {
            AbbaMessage::PreVote {
                round,
                value,
                share,
                just,
            } => {
                buf.put_u8(KIND_PREVOTE);
                buf.put_u32(*round);
                buf.put_u8(*value as u8);
                put_sig_share(buf, share);
                put_prevote_just(buf, just);
            }
            AbbaMessage::MainVote {
                round,
                value,
                share,
                coin_share,
                just,
            } => {
                buf.put_u8(KIND_MAINVOTE);
                buf.put_u32(*round);
                buf.put_u8(value.encode());
                put_sig_share(buf, share);
                buf.put_u16(coin_share.party as u16);
                put_digest(buf, &coin_share.tag);
                match just {
                    MainVoteJust::ForValue(sig) => {
                        buf.put_u8(0);
                        put_digest(buf, &sig.tag);
                    }
                    MainVoteJust::Abstain { zero, one } => {
                        buf.put_u8(1);
                        put_embedded(buf, zero);
                        put_embedded(buf, one);
                    }
                }
            }
        }
    }

    /// Decodes from wire bytes; `None` for malformed input.
    pub fn decode(bytes: &[u8]) -> Option<AbbaMessage> {
        let mut buf = bytes;
        if buf.len() < 6 {
            return None;
        }
        let kind = buf.get_u8();
        let round = buf.get_u32();
        if round == 0 {
            return None;
        }
        match kind {
            KIND_PREVOTE => {
                let value_byte = buf.get_u8();
                if value_byte > 1 {
                    return None;
                }
                let share = get_sig_share(&mut buf)?;
                let just = get_prevote_just(&mut buf)?;
                if !buf.is_empty() {
                    return None;
                }
                Some(AbbaMessage::PreVote {
                    round,
                    value: value_byte == 1,
                    share,
                    just,
                })
            }
            KIND_MAINVOTE => {
                let value = MainVoteValue::decode(buf.get_u8())?;
                let share = get_sig_share(&mut buf)?;
                if buf.len() < 2 {
                    return None;
                }
                let party = buf.get_u16() as usize;
                let coin_share = CoinShare {
                    party,
                    tag: get_digest(&mut buf)?,
                };
                if buf.is_empty() {
                    return None;
                }
                let just = match buf.get_u8() {
                    0 => MainVoteJust::ForValue(ThresholdSignature {
                        tag: get_digest(&mut buf)?,
                    }),
                    1 => MainVoteJust::Abstain {
                        zero: get_embedded(&mut buf)?,
                        one: get_embedded(&mut buf)?,
                    },
                    _ => return None,
                };
                if !buf.is_empty() {
                    return None;
                }
                Some(AbbaMessage::MainVote {
                    round,
                    value,
                    share,
                    coin_share,
                    just,
                })
            }
            _ => None,
        }
    }
}

impl AbbaMessage {
    /// The size this message would have in a real RSA-1024 deployment:
    /// every threshold object (share, signature, coin share/proof) is a
    /// 128-byte group element instead of a 32-byte hash tag. The
    /// simulator adapter charges airtime for this size, keeping the
    /// bandwidth cost of ABBA's cryptography honest.
    pub fn rsa_equivalent_size(&self) -> usize {
        const INFLATE: usize = 128 - DIGEST_LEN;
        let objects = match self {
            AbbaMessage::PreVote { just, .. } => 1 + just_objects(just),
            AbbaMessage::MainVote { just, .. } => {
                // share + coin share.
                2 + match just {
                    MainVoteJust::ForValue(_) => 1,
                    MainVoteJust::Abstain { zero, one } => {
                        2 + just_objects(&zero.just) + just_objects(&one.just)
                    }
                }
            }
        };
        self.encoded_len() + objects * INFLATE
    }
}

fn just_objects(just: &PreVoteJust) -> usize {
    match just {
        PreVoteJust::Round1 => 0,
        PreVoteJust::Hard(_) => 1,
        PreVoteJust::Coin { .. } => 2,
    }
}

// ---- engine ----------------------------------------------------------

/// Output of feeding one event to the engine.
#[derive(Debug, Default)]
pub struct AbbaOutput {
    /// Wire messages to send to every process.
    pub send: Vec<Bytes>,
    /// Set when this call made the process decide.
    pub newly_decided: Option<bool>,
    /// Cryptographic work performed (charge via the cost model).
    pub ops: CryptoOps,
}

/// One round's per-party vote table, in one of two interchangeable
/// layouts (selected by `TURQUOIS_LEGACY_STORE`; see [`crate::gate`]).
/// Share-collection iterates in table order — hash-map order for the
/// legacy layout, ascending party for the compact one — which is safe
/// because threshold `combine` is order-insensitive (it verifies a
/// *set* of shares and emits a MAC over the statement alone).
#[derive(Debug)]
enum VoteTable<V> {
    /// The original party→vote hash map, retained as the differential
    /// oracle.
    Legacy(HashMap<usize, V>),
    /// Dense party-indexed table grown on demand (party ids are dense
    /// `0..n`).
    Compact(Vec<Option<V>>),
}

impl<V> VoteTable<V> {
    fn with_legacy(legacy: bool) -> Self {
        if legacy {
            VoteTable::Legacy(HashMap::new())
        } else {
            VoteTable::Compact(Vec::new())
        }
    }

    /// First-wins insert; returns `true` if `from` was new.
    fn record(&mut self, from: usize, vote: V) -> bool {
        match self {
            VoteTable::Legacy(map) => {
                if let std::collections::hash_map::Entry::Vacant(e) = map.entry(from) {
                    e.insert(vote);
                    true
                } else {
                    false
                }
            }
            VoteTable::Compact(table) => {
                if table.len() <= from {
                    table.resize_with(from + 1, || None);
                }
                if table[from].is_none() {
                    table[from] = Some(vote);
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Recorded votes (layout-dependent order; callers must be
    /// order-insensitive).
    fn values(&self) -> Box<dyn Iterator<Item = &V> + '_> {
        match self {
            VoteTable::Legacy(map) => Box::new(map.values()),
            VoteTable::Compact(table) => Box::new(table.iter().flatten()),
        }
    }

    /// Number of recorded votes (scan; the rounds keep an incremental
    /// total and use this as the debug oracle).
    fn scan_len(&self) -> usize {
        match self {
            VoteTable::Legacy(map) => map.len(),
            VoteTable::Compact(table) => table.iter().flatten().count(),
        }
    }
}

#[derive(Debug)]
struct PreVoteRound {
    votes: VoteTable<(bool, SigShare)>,
    /// Distinct parties recorded (replaces the retired `votes.len()`).
    total: usize,
    /// Incremental distinct-sender tallies over `votes` (`[0]` = votes
    /// for `false`, `[1]` = for `true`), so the unanimity check in
    /// `try_progress` is O(1) instead of a rescan.
    value_counts: [usize; 2],
    fired: bool,
    example: [Option<EmbeddedPreVote>; 2],
}

impl Default for PreVoteRound {
    fn default() -> Self {
        PreVoteRound::with_legacy(crate::gate::legacy_store_enabled())
    }
}

impl PreVoteRound {
    /// Creates an empty round with an explicit layout choice (used by
    /// differential tests to exercise both layouts in one process).
    fn with_legacy(legacy: bool) -> Self {
        PreVoteRound {
            votes: VoteTable::with_legacy(legacy),
            total: 0,
            value_counts: [0; 2],
            fired: false,
            example: [None, None],
        }
    }

    /// Records `from`'s pre-vote if it is the first accepted from that
    /// party this round (first value wins).
    fn record(&mut self, from: usize, value: bool, share: SigShare) {
        if self.votes.record(from, (value, share)) {
            self.total += 1;
            self.value_counts[value as usize] += 1;
        }
    }

    /// Distinct parties recorded this round. O(1).
    fn len(&self) -> usize {
        debug_assert_eq!(self.total, self.votes.scan_len());
        self.total
    }

    /// Parties whose recorded pre-vote equals `value`. O(1).
    fn count(&self, value: bool) -> usize {
        debug_assert_eq!(self.value_counts[value as usize], self.scan_count(value));
        self.value_counts[value as usize]
    }

    /// The retired scan `count` replaced (debug oracle + proptest).
    fn scan_count(&self, value: bool) -> usize {
        self.votes.values().filter(|(v, _)| *v == value).count()
    }
}

/// Tally index for a [`MainVoteValue`] (`Zero`, `One`, `Abstain`).
#[inline]
fn mv_idx(value: MainVoteValue) -> usize {
    match value {
        MainVoteValue::Zero => 0,
        MainVoteValue::One => 1,
        MainVoteValue::Abstain => 2,
    }
}

#[derive(Debug)]
struct MainVoteRound {
    votes: VoteTable<(MainVoteValue, SigShare)>,
    /// Distinct parties recorded (replaces the retired `votes.len()`).
    total: usize,
    /// Incremental distinct-sender tallies over `votes`, indexed by
    /// [`mv_idx`]; backs the O(1) binary/unanimity checks in
    /// `try_progress`.
    value_counts: [usize; 3],
    fired: bool,
}

impl Default for MainVoteRound {
    fn default() -> Self {
        MainVoteRound::with_legacy(crate::gate::legacy_store_enabled())
    }
}

impl MainVoteRound {
    /// Creates an empty round with an explicit layout choice (used by
    /// differential tests to exercise both layouts in one process).
    fn with_legacy(legacy: bool) -> Self {
        MainVoteRound {
            votes: VoteTable::with_legacy(legacy),
            total: 0,
            value_counts: [0; 3],
            fired: false,
        }
    }

    /// Records `from`'s main-vote if it is the first accepted from that
    /// party this round (first value wins).
    fn record(&mut self, from: usize, value: MainVoteValue, share: SigShare) {
        if self.votes.record(from, (value, share)) {
            self.total += 1;
            self.value_counts[mv_idx(value)] += 1;
        }
    }

    /// Distinct parties recorded this round. O(1).
    fn len(&self) -> usize {
        debug_assert_eq!(self.total, self.votes.scan_len());
        self.total
    }

    /// Parties whose recorded main-vote equals `value`. O(1).
    fn count(&self, value: MainVoteValue) -> usize {
        debug_assert_eq!(self.value_counts[mv_idx(value)], self.scan_count(value));
        self.value_counts[mv_idx(value)]
    }

    /// The retired scan `count` replaced (debug oracle + proptest).
    fn scan_count(&self, value: MainVoteValue) -> usize {
        self.votes.values().filter(|(v, _)| *v == value).count()
    }
}

/// What a fired pre-vote quorum resolved to (extracted under the round
/// borrow; everything the follow-up needs, no map clone).
enum PreFire {
    Unanimous { bit: bool, shares: Vec<SigShare> },
    Mixed { zero: EmbeddedPreVote, one: EmbeddedPreVote },
}

/// Dual-threshold key material for one ABBA party (from the trusted
/// dealer).
#[derive(Clone, Debug)]
pub struct AbbaKeys {
    /// Signature scheme public state (threshold `n − f`).
    pub sig_public: SharePublic,
    /// This party's signature key.
    pub sig_key: PartyKey,
    /// Coin scheme public state (threshold `f + 1`).
    pub coin_public: SharePublic,
    /// This party's coin key.
    pub coin_key: PartyKey,
}

impl AbbaKeys {
    /// Trusted-dealer setup: one key bundle per party.
    pub fn trusted_setup(n: usize, f: usize, seed: u64) -> Vec<AbbaKeys> {
        let (sig_public, sig_keys) =
            turquois_crypto::threshold::Dealer::deal(n, n - f, seed ^ 0x51c);
        let (coin_public, coin_keys) =
            turquois_crypto::threshold::Dealer::deal(n, f + 1, seed ^ 0xc01);
        sig_keys
            .into_iter()
            .zip(coin_keys)
            .map(|(sig_key, coin_key)| AbbaKeys {
                sig_public: sig_public.clone(),
                sig_key,
                coin_public: coin_public.clone(),
                coin_key,
            })
            .collect()
    }
}

/// Builds a correctly-signed round-1 pre-vote for `value` on behalf of
/// the holder of `keys`. Round-1 pre-votes need no justification, so a
/// Byzantine party can legitimately sign *both* values and deliver a
/// different one to each receiver — the canonical equivocation the
/// `turquois-check` schedule explorer injects. (For rounds > 1 the
/// justification requirement makes this unforgeable.)
pub fn round1_prevote(keys: &AbbaKeys, value: bool) -> AbbaMessage {
    AbbaMessage::PreVote {
        round: 1,
        value,
        share: keys.sig_key.sign_share(&pv_statement(1, value)),
        just: PreVoteJust::Round1,
    }
}

/// One party's ABBA engine.
pub struct Abba {
    n: usize,
    f: usize,
    me: usize,
    keys: AbbaKeys,
    proposal: bool,
    round: u32,
    pre: HashMap<u32, PreVoteRound>,
    main: HashMap<u32, MainVoteRound>,
    coin_shares: HashMap<u32, HashMap<usize, CoinShare>>,
    hard_sigs: HashMap<(u32, bool), ThresholdSignature>,
    decision: Option<bool>,
    stop_round: Option<u32>,
    verify_memo: MemoCache<AbbaVerifyKey>,
    /// Pooled encode scratch for outgoing wire messages (arena codec;
    /// unused when `TURQUOIS_LEGACY_CODEC` selects per-message
    /// builders).
    arena: EncodeArena,
    _rng: StdRng,
}

impl std::fmt::Debug for Abba {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Abba")
            .field("me", &self.me)
            .field("round", &self.round)
            .field("decision", &self.decision)
            .finish_non_exhaustive()
    }
}

impl Abba {
    /// Creates the engine for party `me` proposing `proposal`.
    ///
    /// # Panics
    ///
    /// Panics unless `3f < n`, `me < n`, and the key bundle's thresholds
    /// match `(n − f, f + 1)`.
    pub fn new(n: usize, f: usize, me: usize, proposal: bool, keys: AbbaKeys, seed: u64) -> Self {
        assert!(3 * f < n, "ABBA requires n > 3f");
        assert!(me < n, "party id out of range");
        assert_eq!(keys.sig_public.threshold(), n - f, "wrong sig threshold");
        assert_eq!(keys.coin_public.threshold(), f + 1, "wrong coin threshold");
        assert_eq!(keys.sig_key.party(), me, "keys belong to another party");
        Abba {
            n,
            f,
            me,
            keys,
            proposal,
            round: 1,
            pre: HashMap::new(),
            main: HashMap::new(),
            coin_shares: HashMap::new(),
            hard_sigs: HashMap::new(),
            decision: None,
            stop_round: None,
            verify_memo: MemoCache::new(ABBA_MEMO_CAP),
            arena: EncodeArena::new(),
            _rng: StdRng::seed_from_u64(seed ^ 0xabba),
        }
    }

    /// Encodes `msg` into `out.send` — through the engine's pooled
    /// arena by default, or the legacy per-message builder under
    /// `TURQUOIS_LEGACY_CODEC` (byte-identical either way).
    fn emit(&mut self, msg: &AbbaMessage, out: &mut AbbaOutput) {
        out.send.push(if legacy_codec_enabled() {
            msg.encode()
        } else {
            self.arena.encode_with(|b| msg.encode_into(b))
        });
    }

    /// Memoized verification: the [`CryptoOps`] counters are bumped by
    /// the *callers* before invoking this, so simulated CPU cost is
    /// charged per logical verification whether or not the cache hits —
    /// only real hashing work is skipped.
    fn memo_verify(
        &mut self,
        key: AbbaVerifyKey,
        compute: impl FnOnce(&AbbaKeys) -> bool,
    ) -> bool {
        let keys = &self.keys;
        self.verify_memo.lookup(key, || compute(keys))
    }

    /// This party's id.
    pub fn id(&self) -> usize {
        self.me
    }

    /// Current round.
    pub fn round(&self) -> u32 {
        self.round
    }

    /// The decision, once reached.
    pub fn decision(&self) -> Option<bool> {
        self.decision
    }

    /// Deterministic estimate of the engine's consensus-store footprint
    /// in bytes: 64 per live pre/main round plus 40 per recorded vote,
    /// coin share, and deposited hard signature (a share is a party id
    /// plus a 32-byte tag). Reads the O(1) per-round totals (the round
    /// maps hold a GC-bounded handful of entries), depends on logical
    /// content only, and is identical in both vote-table layouts.
    /// Excludes the verification memo cache (a host-side accelerator).
    pub fn store_bytes(&self) -> usize {
        let pre: usize = self.pre.values().map(|pr| pr.total).sum();
        let main: usize = self.main.values().map(|mr| mr.total).sum();
        let coins: usize = self.coin_shares.values().map(HashMap::len).sum();
        (self.pre.len() + self.main.len()) * 64
            + 40 * (pre + main + coins + self.hard_sigs.len())
    }

    /// Starts the protocol: round-1 pre-vote for the proposal.
    pub fn on_start(&mut self) -> AbbaOutput {
        let mut out = AbbaOutput::default();
        let share = self.keys.sig_key.sign_share(&pv_statement(1, self.proposal));
        out.ops.share_signs += 1;
        let msg = AbbaMessage::PreVote {
            round: 1,
            value: self.proposal,
            share,
            just: PreVoteJust::Round1,
        };
        self.emit(&msg, &mut out);
        out
    }

    /// Processes a wire message from link-layer sender `from`.
    pub fn on_message(&mut self, from: usize, bytes: &[u8]) -> AbbaOutput {
        let mut out = AbbaOutput::default();
        let Some(msg) = AbbaMessage::decode(bytes) else {
            return out;
        };
        match msg {
            AbbaMessage::PreVote {
                round,
                value,
                share,
                just,
            } => {
                if share.party != from {
                    return out;
                }
                if !self.verify_prevote(round, value, &share, &just, &mut out.ops) {
                    return out;
                }
                let pr = self.pre.entry(round).or_default();
                pr.record(from, value, share);
                if pr.example[value as usize].is_none() {
                    pr.example[value as usize] = Some(EmbeddedPreVote { value, share, just });
                }
            }
            AbbaMessage::MainVote {
                round,
                value,
                share,
                coin_share,
                just,
            } => {
                if share.party != from || coin_share.party != from {
                    return out;
                }
                // Verify the main-vote share.
                out.ops.share_verifies += 1;
                let mv_key = (4u8, round, value.encode(), share.party as u16, share.tag);
                if !self.memo_verify(mv_key, |k| {
                    k.sig_public.verify_share(&mv_statement(round, value), &share)
                }) {
                    return out;
                }
                // Verify the coin share (still record the main-vote if
                // only the coin share is bad — they are independent).
                out.ops.share_verifies += 1;
                let cs_key = (5u8, round, 0, coin_share.party as u16, coin_share.tag);
                let coin_ok = self.memo_verify(cs_key, |k| {
                    k.coin_public.verify_coin_share(&coin_tag(round), &coin_share)
                });
                // Verify the justification.
                let just_ok = match &just {
                    MainVoteJust::ForValue(sig) => {
                        out.ops.sig_verifies += 1;
                        match value.as_bit() {
                            Some(bit) => {
                                let key = (1u8, round, bit as u8, 0, sig.tag);
                                let ok = self.memo_verify(key, |k| {
                                    k.sig_public.verify(&pv_statement(round, bit), sig)
                                });
                                if ok {
                                    self.hard_sigs.entry((round, bit)).or_insert(*sig);
                                }
                                ok
                            }
                            None => false,
                        }
                    }
                    MainVoteJust::Abstain { zero, one } => {
                        value == MainVoteValue::Abstain
                            && !zero.value
                            && one.value
                            && self.verify_prevote(round, false, &zero.share, &zero.just, &mut out.ops)
                            && self.verify_prevote(round, true, &one.share, &one.just, &mut out.ops)
                    }
                };
                if !just_ok {
                    return out;
                }
                if coin_ok {
                    self.coin_shares
                        .entry(round)
                        .or_default()
                        .entry(from)
                        .or_insert(coin_share);
                }
                let mr = self.main.entry(round).or_default();
                mr.record(from, value, share);
            }
        }
        self.try_progress(&mut out);
        out
    }

    fn verify_prevote(
        &mut self,
        round: u32,
        value: bool,
        share: &SigShare,
        just: &PreVoteJust,
        ops: &mut CryptoOps,
    ) -> bool {
        ops.share_verifies += 1;
        let pv_key = (0u8, round, value as u8, share.party as u16, share.tag);
        if !self.memo_verify(pv_key, |k| {
            k.sig_public.verify_share(&pv_statement(round, value), share)
        }) {
            return false;
        }
        match just {
            PreVoteJust::Round1 => round == 1,
            PreVoteJust::Hard(sig) => {
                if round < 2 {
                    return false;
                }
                ops.sig_verifies += 1;
                let key = (1u8, round - 1, value as u8, 0, sig.tag);
                let ok = self.memo_verify(key, |k| {
                    k.sig_public.verify(&pv_statement(round - 1, value), sig)
                });
                if ok {
                    self.hard_sigs.entry((round - 1, value)).or_insert(*sig);
                }
                ok
            }
            PreVoteJust::Coin { abstain_sig, proof } => {
                if round < 2 {
                    return false;
                }
                ops.sig_verifies += 2;
                let abstain_key = (
                    2u8,
                    round - 1,
                    MainVoteValue::Abstain.encode(),
                    0,
                    abstain_sig.tag,
                );
                let proof_key = (3u8, round - 1, proof.value as u8, 0, proof.tag);
                self.memo_verify(abstain_key, |k| {
                    k.sig_public.verify(
                        &mv_statement(round - 1, MainVoteValue::Abstain),
                        abstain_sig,
                    )
                }) && self.memo_verify(proof_key, |k| {
                    k.coin_public.verify_coin_proof(&coin_tag(round - 1), proof)
                }) && proof.value == value
            }
        }
    }

    /// Fires any quorum transitions for the current round, to fixpoint.
    fn try_progress(&mut self, out: &mut AbbaOutput) {
        loop {
            if let Some(stop) = self.stop_round {
                if self.round > stop {
                    return;
                }
            }
            let need = self.n - self.f;
            let round = self.round;

            // Pre-vote quorum → main-vote.
            let pre_fire = {
                let pr = self.pre.entry(round).or_default();
                if !pr.fired && pr.len() >= need {
                    pr.fired = true;
                    // O(1) unanimity from the incremental tallies; only
                    // the data the follow-up needs leaves the borrow (no
                    // vote-map clone).
                    if pr.count(false) == 0 || pr.count(true) == 0 {
                        let bit = pr.count(false) == 0;
                        let shares: Vec<SigShare> = pr
                            .votes
                            .values()
                            .filter(|(v, _)| *v == bit)
                            .map(|(_, s)| *s)
                            .collect();
                        Some(PreFire::Unanimous { bit, shares })
                    } else {
                        Some(PreFire::Mixed {
                            zero: pr.example[0].clone().expect("mixed → a 0 pre-vote exists"),
                            one: pr.example[1].clone().expect("mixed → a 1 pre-vote exists"),
                        })
                    }
                } else {
                    None
                }
            };
            if let Some(fire) = pre_fire {
                let (value, just) = match fire {
                    PreFire::Unanimous { bit, shares } => {
                        out.ops.shares_combined += shares.len() as u32;
                        let sig = self
                            .keys
                            .sig_public
                            .combine(&pv_statement(round, bit), &shares)
                            .expect("quorum of verified shares combines");
                        self.hard_sigs.entry((round, bit)).or_insert(sig);
                        (MainVoteValue::from_bit(bit), MainVoteJust::ForValue(sig))
                    }
                    PreFire::Mixed { zero, one } => {
                        (MainVoteValue::Abstain, MainVoteJust::Abstain { zero, one })
                    }
                };
                let share = self.keys.sig_key.sign_share(&mv_statement(round, value));
                let coin_share = self.keys.coin_key.coin_share(&coin_tag(round));
                out.ops.share_signs += 2;
                let msg = AbbaMessage::MainVote {
                    round,
                    value,
                    share,
                    coin_share,
                    just,
                };
                self.emit(&msg, out);
                continue;
            }

            // Main-vote quorum → decide / next round's pre-vote.
            let main_fire = {
                let mr = self.main.entry(round).or_default();
                if !mr.fired && mr.len() >= need {
                    mr.fired = true;
                    // Copy the O(1) tallies out of the borrow; the
                    // abstain shares are only materialised when no
                    // binary vote exists (the only case that uses them).
                    let counts = [
                        mr.count(MainVoteValue::Zero),
                        mr.count(MainVoteValue::One),
                        mr.count(MainVoteValue::Abstain),
                    ];
                    let abstain_shares: Vec<SigShare> = if counts[0] == 0 && counts[1] == 0 {
                        mr.votes
                            .values()
                            .filter(|(v, _)| *v == MainVoteValue::Abstain)
                            .map(|(_, s)| *s)
                            .collect()
                    } else {
                        Vec::new()
                    };
                    Some((counts, abstain_shares))
                } else {
                    None
                }
            };
            if let Some((counts, abstain_shares)) = main_fire {
                // Zero checked before One, as in the retired scan.
                let binary = if counts[mv_idx(MainVoteValue::Zero)] > 0 {
                    Some(false)
                } else if counts[mv_idx(MainVoteValue::One)] > 0 {
                    Some(true)
                } else {
                    None
                };
                let next_round = round + 1;
                let (next_value, next_just) = match binary {
                    Some(bit) => {
                        let unanimous = counts[mv_idx(MainVoteValue::Abstain)] == 0
                            && counts[mv_idx(MainVoteValue::from_bit(!bit))] == 0;
                        if unanimous {
                            // Unanimous main-votes: decide.
                            if self.decision.is_none() {
                                self.decision = Some(bit);
                                self.stop_round = Some(next_round);
                                out.newly_decided = Some(bit);
                            }
                        }
                        let sig = *self
                            .hard_sigs
                            .get(&(round, bit))
                            .expect("a verified b-main-vote deposited its pre-vote signature");
                        (bit, PreVoteJust::Hard(sig))
                    }
                    None => {
                        // All abstain: combine the abstain signature and
                        // the shared coin.
                        out.ops.shares_combined += abstain_shares.len() as u32;
                        let abstain_sig = self
                            .keys
                            .sig_public
                            .combine(
                                &mv_statement(round, MainVoteValue::Abstain),
                                &abstain_shares,
                            )
                            .expect("quorum of verified abstain shares");
                        let shares: Vec<CoinShare> = self
                            .coin_shares
                            .get(&round)
                            .map(|m| m.values().copied().collect())
                            .unwrap_or_default();
                        out.ops.shares_combined += shares.len() as u32;
                        let proof = self
                            .keys
                            .coin_public
                            .combine_coin_proof(&coin_tag(round), &shares)
                            .expect("n−f ≥ f+1 verified coin shares accompany main-votes");
                        (proof.value, PreVoteJust::Coin { abstain_sig, proof })
                    }
                };
                self.round = next_round;
                if let Some(stop) = self.stop_round {
                    if next_round > stop {
                        return; // decided and already helped one round
                    }
                }
                let share = self
                    .keys
                    .sig_key
                    .sign_share(&pv_statement(next_round, next_value));
                out.ops.share_signs += 1;
                let msg = AbbaMessage::PreVote {
                    round: next_round,
                    value: next_value,
                    share,
                    just: next_just,
                };
                self.emit(&msg, out);
                // GC old rounds.
                if next_round > 2 {
                    let floor = next_round - 2;
                    self.pre.retain(|&r, _| r >= floor);
                    self.main.retain(|&r, _| r >= floor);
                    self.coin_shares.retain(|&r, _| r >= floor);
                    self.hard_sigs.retain(|&(r, _), _| r >= floor);
                    self.verify_memo.retain(|k| k.1 >= floor);
                }
                continue;
            }
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn group(n: usize, f: usize, proposals: &[bool], seed: u64) -> Vec<Abba> {
        let keys = AbbaKeys::trusted_setup(n, f, seed);
        keys.into_iter()
            .enumerate()
            .map(|(me, k)| Abba::new(n, f, me, proposals[me % proposals.len()], k, seed))
            .collect()
    }

    /// Lossless full-information exchange (every message reaches all,
    /// including the sender).
    fn run_lossless(engines: &mut [Abba], max_iters: usize) -> Vec<Option<bool>> {
        let n = engines.len();
        let mut queue: Vec<(usize, Bytes)> = Vec::new();
        for e in engines.iter_mut() {
            let out = e.on_start();
            let me = e.id();
            queue.extend(out.send.into_iter().map(|b| (me, b)));
        }
        let mut iters = 0;
        while let Some((from, bytes)) = queue.pop() {
            iters += 1;
            assert!(iters < max_iters, "message budget exceeded");
            for to in 0..n {
                let out = engines[to].on_message(from, &bytes);
                queue.extend(out.send.into_iter().map(|b| (to, b)));
            }
            if engines.iter().all(|e| e.decision().is_some()) {
                break;
            }
        }
        engines.iter().map(|e| e.decision()).collect()
    }

    #[test]
    fn codec_round_trip_all_variants() {
        let share = SigShare {
            party: 3,
            tag: turquois_crypto::sha256::sha256(b"s"),
        };
        let coin_share = CoinShare {
            party: 3,
            tag: turquois_crypto::sha256::sha256(b"c"),
        };
        let sig = ThresholdSignature {
            tag: turquois_crypto::sha256::sha256(b"t"),
        };
        let proof = CoinProof {
            value: true,
            tag: turquois_crypto::sha256::sha256(b"p"),
        };
        let messages = vec![
            AbbaMessage::PreVote {
                round: 1,
                value: true,
                share,
                just: PreVoteJust::Round1,
            },
            AbbaMessage::PreVote {
                round: 2,
                value: false,
                share,
                just: PreVoteJust::Hard(sig),
            },
            AbbaMessage::PreVote {
                round: 3,
                value: true,
                share,
                just: PreVoteJust::Coin {
                    abstain_sig: sig,
                    proof,
                },
            },
            AbbaMessage::MainVote {
                round: 2,
                value: MainVoteValue::One,
                share,
                coin_share,
                just: MainVoteJust::ForValue(sig),
            },
            AbbaMessage::MainVote {
                round: 2,
                value: MainVoteValue::Abstain,
                share,
                coin_share,
                just: MainVoteJust::Abstain {
                    zero: EmbeddedPreVote {
                        value: false,
                        share,
                        just: PreVoteJust::Round1,
                    },
                    one: EmbeddedPreVote {
                        value: true,
                        share,
                        just: PreVoteJust::Hard(sig),
                    },
                },
            },
        ];
        for m in messages {
            let bytes = m.encode();
            assert_eq!(AbbaMessage::decode(&bytes), Some(m.clone()));
            // The arithmetic length matches what encode produced, so
            // `rsa_equivalent_size` needs no throwaway encode.
            assert_eq!(m.encoded_len(), bytes.len());
            // encode_into appends the same bytes, even mid-buffer (the
            // arena stages messages at arbitrary offsets).
            let mut staged = Vec::new();
            staged.put_slice(b"prefix");
            m.encode_into(&mut staged);
            assert_eq!(&staged[6..], &bytes[..]);
            // Truncations fail.
            for cut in 0..bytes.len() {
                assert_eq!(AbbaMessage::decode(&bytes[..cut]), None, "cut {cut}");
            }
        }
        assert_eq!(AbbaMessage::decode(b""), None);
    }

    /// The arena codec and the legacy owned codec drive byte-identical
    /// full runs: same wire bytes out of every call, same decisions,
    /// same crypto-op counts.
    #[test]
    fn codec_paths_are_observationally_identical() {
        fn run(legacy: bool) -> (Vec<(usize, Vec<u8>, CryptoOps)>, Vec<Option<bool>>) {
            crate::gate::set_legacy_codec(legacy);
            let n = 4;
            let mut engines = group(n, 1, &[true, false], 31);
            let mut trace: Vec<(usize, Vec<u8>, CryptoOps)> = Vec::new();
            let mut queue: Vec<(usize, Bytes)> = Vec::new();
            for e in engines.iter_mut() {
                let out = e.on_start();
                let me = e.id();
                queue.extend(out.send.into_iter().map(|b| (me, b)));
            }
            let mut iters = 0;
            while let Some((from, bytes)) = queue.pop() {
                iters += 1;
                assert!(iters < 500_000, "livelock");
                for to in 0..n {
                    let out = engines[to].on_message(from, &bytes);
                    for b in out.send {
                        trace.push((to, b.to_vec(), out.ops));
                        queue.push((to, b));
                    }
                }
                if engines.iter().all(|e| e.decision().is_some()) {
                    break;
                }
            }
            crate::gate::set_legacy_codec(false);
            (trace, engines.iter().map(|e| e.decision()).collect())
        }
        let arena = run(false);
        let legacy = run(true);
        assert_eq!(arena.0, legacy.0, "wire bytes and crypto ops");
        assert_eq!(arena.1, legacy.1, "decisions");
        assert!(arena.1[0].is_some(), "the run decided");
    }

    #[test]
    fn unanimous_decides_in_one_round() {
        for bit in [false, true] {
            let mut engines = group(4, 1, &[bit], 7);
            let decisions = run_lossless(&mut engines, 100_000);
            assert!(decisions.iter().all(|d| *d == Some(bit)), "{decisions:?}");
            assert!(engines.iter().all(|e| e.round() <= 2));
        }
    }

    #[test]
    fn divergent_decides_and_agrees() {
        for seed in 0..4u64 {
            let mut engines = group(4, 1, &[true, false], seed);
            let decisions = run_lossless(&mut engines, 500_000);
            let first = decisions[0].expect("decides");
            assert!(decisions.iter().all(|d| *d == Some(first)), "{decisions:?}");
        }
    }

    #[test]
    fn larger_group_divergent() {
        let mut engines = group(7, 2, &[true, false], 11);
        let decisions = run_lossless(&mut engines, 1_000_000);
        let first = decisions[0].expect("decides");
        assert!(decisions.iter().all(|d| *d == Some(first)));
    }

    #[test]
    fn crashed_minority_does_not_block() {
        let mut engines = group(4, 1, &[true], 13);
        let n = 4;
        let mut queue: Vec<(usize, Bytes)> = Vec::new();
        for e in engines.iter_mut().take(3) {
            let out = e.on_start();
            let me = e.id();
            queue.extend(out.send.into_iter().map(|b| (me, b)));
        }
        let mut iters = 0;
        while let Some((from, bytes)) = queue.pop() {
            iters += 1;
            assert!(iters < 100_000, "livelock");
            for to in 0..n - 1 {
                let out = engines[to].on_message(from, &bytes);
                queue.extend(out.send.into_iter().map(|b| (to, b)));
            }
            if engines[..3].iter().all(|e| e.decision().is_some()) {
                break;
            }
        }
        assert!(engines[..3].iter().all(|e| e.decision() == Some(true)));
    }

    #[test]
    fn invalid_share_rejected_but_costs_verification() {
        let mut engines = group(4, 1, &[true], 17);
        let bogus = AbbaMessage::PreVote {
            round: 1,
            value: false,
            share: SigShare {
                party: 3,
                tag: turquois_crypto::sha256::sha256(b"garbage"),
            },
            just: PreVoteJust::Round1,
        };
        let out = engines[0].on_message(3, &bogus.encode());
        assert!(out.send.is_empty());
        assert_eq!(out.ops.share_verifies, 1, "the forgery still cost a verify");
    }

    #[test]
    fn share_replay_under_wrong_sender_rejected() {
        let mut engines = group(4, 1, &[true], 19);
        let out = engines[1].on_start();
        // Replay party 1's genuine pre-vote claiming link sender 2.
        let replayed = out.send[0].clone();
        let r = engines[0].on_message(2, &replayed);
        assert!(r.send.is_empty(), "share.party must match the channel");
    }

    #[test]
    fn forged_hard_justification_rejected() {
        let mut engines = group(4, 1, &[true], 23);
        let keys = AbbaKeys::trusted_setup(4, 1, 23);
        let share = keys[3].sig_key.sign_share(&pv_statement(2, false));
        let msg = AbbaMessage::PreVote {
            round: 2,
            value: false,
            share,
            just: PreVoteJust::Hard(ThresholdSignature {
                tag: turquois_crypto::sha256::sha256(b"fake"),
            }),
        };
        let out = engines[0].on_message(3, &msg.encode());
        assert!(out.send.is_empty());
        assert!(out.ops.sig_verifies >= 1);
    }

    #[test]
    fn ops_accumulate() {
        let mut a = CryptoOps::default();
        a.add(CryptoOps {
            share_signs: 1,
            share_verifies: 2,
            sig_verifies: 3,
            shares_combined: 4,
        });
        a.add(CryptoOps {
            share_signs: 1,
            share_verifies: 1,
            sig_verifies: 1,
            shares_combined: 1,
        });
        assert_eq!(
            a,
            CryptoOps {
                share_signs: 2,
                share_verifies: 3,
                sig_verifies: 4,
                shares_combined: 5,
            }
        );
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(128))]

        /// Pre-vote and main-vote incremental tallies vs. the retired
        /// scan oracle under arbitrary interleavings of records
        /// (duplicate parties keep their first value) and the engine's
        /// whole-round GC — run against both vote-table layouts, which
        /// must also agree with each other on every count and on the
        /// multiset of collected shares.
        #[test]
        fn vote_round_tallies_match_scan_oracle(
            ops in proptest::collection::vec(
                // (round, party, value sel 0..3, gc trigger)
                (1u32..6, 0usize..7, 0u8..3, 0u8..16),
                1..80,
            ),
        ) {
            let share = |party: usize| SigShare {
                party,
                tag: turquois_crypto::sha256::Digest([party as u8; turquois_crypto::sha256::DIGEST_LEN]),
            };
            let mut pre: [HashMap<u32, PreVoteRound>; 2] = [HashMap::new(), HashMap::new()];
            let mut main: [HashMap<u32, MainVoteRound>; 2] = [HashMap::new(), HashMap::new()];
            for (round, party, v, gc) in ops {
                if gc == 0 {
                    // The engine's GC drops whole rounds below a floor.
                    for m in &mut pre {
                        m.retain(|&r, _| r >= round);
                    }
                    for m in &mut main {
                        m.retain(|&r, _| r >= round);
                    }
                } else {
                    for (i, legacy) in [false, true].into_iter().enumerate() {
                        pre[i]
                            .entry(round)
                            .or_insert_with(|| PreVoteRound::with_legacy(legacy))
                            .record(party, v % 2 == 1, share(party));
                        let mv = [MainVoteValue::Zero, MainVoteValue::One, MainVoteValue::Abstain]
                            [v as usize];
                        main[i]
                            .entry(round)
                            .or_insert_with(|| MainVoteRound::with_legacy(legacy))
                            .record(party, mv, share(party));
                    }
                }
                for (&round, pr) in &pre[0] {
                    let lpr = &pre[1][&round];
                    proptest::prop_assert_eq!(pr.len(), lpr.len());
                    // Same vote *set* regardless of iteration order
                    // (combine downstream is order-insensitive).
                    let mut a: Vec<_> = pr.votes.values().cloned().collect();
                    let mut b: Vec<_> = lpr.votes.values().cloned().collect();
                    a.sort_by_key(|(_, s)| s.party);
                    b.sort_by_key(|(_, s)| s.party);
                    proptest::prop_assert_eq!(a, b);
                    for value in [false, true] {
                        proptest::prop_assert_eq!(pr.count(value), pr.scan_count(value));
                        proptest::prop_assert_eq!(pr.count(value), lpr.count(value));
                        proptest::prop_assert_eq!(lpr.count(value), lpr.scan_count(value));
                    }
                }
                for (&round, mr) in &main[0] {
                    let lmr = &main[1][&round];
                    proptest::prop_assert_eq!(mr.len(), lmr.len());
                    for value in [MainVoteValue::Zero, MainVoteValue::One, MainVoteValue::Abstain] {
                        proptest::prop_assert_eq!(mr.count(value), mr.scan_count(value));
                        proptest::prop_assert_eq!(mr.count(value), lmr.count(value));
                        proptest::prop_assert_eq!(lmr.count(value), lmr.scan_count(value));
                    }
                }
            }
        }
    }
}
