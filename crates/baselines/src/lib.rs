//! # turquois-baselines — the comparison protocols of the DSN 2010
//! evaluation
//!
//! The Turquois paper benchmarks against two classic intrusion-tolerant
//! binary consensus protocols, both built for the standard asynchronous
//! model with *reliable point-to-point links* (TCP in the paper's
//! testbed):
//!
//! * [`bracha`] — Bracha's 1984 protocol: no public-key cryptography,
//!   but every logical message goes through [`rbc`] (reliable broadcast),
//!   giving O(n³) message complexity and O(2ⁿ) expected rounds in the
//!   worst case.
//! * [`abba`] — Cachin–Kursawe–Shoup's ABBA: O(n²) messages and a
//!   constant expected number of rounds, paid for with threshold
//!   (RSA-class) cryptography on every message.
//!
//! Both engines are sans-io, mirroring `turquois-core`: the caller feeds
//! `on_start` / `on_message` and transmits whatever comes back over its
//! reliable transport. Adapters binding them to the `wireless-net`
//! simulator (including per-link HMAC authentication emulating the
//! paper's IPSec AH setup for Bracha, and CPU cost charging for ABBA's
//! cryptography) live in `turquois-harness`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Quorum thresholds are written in the papers' literal `f + 1` /
// `2f + 1` form; clippy's `> f` rewrite is equivalent but obscures the
// correspondence with the protocol descriptions.
#![allow(clippy::int_plus_one)]

pub mod abba;
pub mod bracha;
pub mod gate;
pub mod rbc;

pub use abba::{Abba, AbbaKeys, AbbaMessage, CryptoOps};
pub use bracha::{Bracha, StepValue};
pub use rbc::{RbcMessage, ReliableBroadcast};
