//! Bracha's reliable broadcast (the substrate of his consensus
//! protocol).
//!
//! Reliable broadcast prevents equivocation: if a Byzantine sender tries
//! to send different values to different processes, either nobody
//! delivers or everybody delivers the *same* value. The classic echo
//! protocol:
//!
//! 1. The sender broadcasts `INITIAL(m)`.
//! 2. On `INITIAL(m)`: broadcast `ECHO(m)`.
//! 3. On more than `(n+f)/2` `ECHO(m)`: broadcast `READY(m)` (once).
//! 4. On `f + 1` `READY(m)`: broadcast `READY(m)` (once) — amplification.
//! 5. On `2f + 1` `READY(m)`: deliver `m`.
//!
//! Each broadcast *instance* is identified by a [`Tag`] — the origin
//! process plus an application-chosen `(round, step)` label — so one
//! origin can run many broadcasts. A correct origin broadcasts at most
//! one payload per tag; the protocol guarantees all correct processes
//! deliver at most one payload per tag, the same one everywhere.
//!
//! This is the source of Bracha's O(n³) message complexity: every
//! logical broadcast costs `n` ECHOs and `n` READYs from every process.

use bytes::{BufMut, Bytes, BytesMut};
use std::collections::{BTreeSet, HashMap};

/// Identifies one reliable-broadcast instance.
#[derive(Clone, Copy, Debug, Eq, PartialEq, Hash, Ord, PartialOrd)]
pub struct Tag {
    /// The process whose message is being broadcast.
    pub origin: usize,
    /// Application label (consensus round).
    pub round: u32,
    /// Application label (consensus step).
    pub step: u8,
}

/// A reliable-broadcast protocol message.
#[derive(Clone, Debug, Eq, PartialEq)]
pub enum RbcMessage {
    /// The origin's initial transmission.
    Initial {
        /// Instance tag (its `origin` must equal the link-layer sender).
        tag: Tag,
        /// The payload being broadcast.
        payload: Bytes,
    },
    /// A witness echo.
    Echo {
        /// Instance tag.
        tag: Tag,
        /// The echoed payload.
        payload: Bytes,
    },
    /// A delivery-readiness attestation.
    Ready {
        /// Instance tag.
        tag: Tag,
        /// The payload attested.
        payload: Bytes,
    },
}

const KIND_INITIAL: u8 = 1;
const KIND_ECHO: u8 = 2;
const KIND_READY: u8 = 3;

impl RbcMessage {
    /// Encodes for transmission.
    pub fn encode(&self) -> Bytes {
        let (kind, tag, payload) = match self {
            RbcMessage::Initial { tag, payload } => (KIND_INITIAL, tag, payload),
            RbcMessage::Echo { tag, payload } => (KIND_ECHO, tag, payload),
            RbcMessage::Ready { tag, payload } => (KIND_READY, tag, payload),
        };
        let mut buf = BytesMut::with_capacity(1 + 2 + 4 + 1 + 2 + payload.len());
        buf.put_u8(kind);
        buf.put_u16(tag.origin as u16);
        buf.put_u32(tag.round);
        buf.put_u8(tag.step);
        buf.put_u16(payload.len() as u16);
        buf.put_slice(payload);
        buf.freeze()
    }

    /// Decodes from wire bytes; `None` for malformed input.
    pub fn decode(bytes: &[u8]) -> Option<RbcMessage> {
        if bytes.len() < 10 {
            return None;
        }
        let kind = bytes[0];
        let origin = u16::from_be_bytes(bytes[1..3].try_into().ok()?) as usize;
        let round = u32::from_be_bytes(bytes[3..7].try_into().ok()?);
        let step = bytes[7];
        let len = u16::from_be_bytes(bytes[8..10].try_into().ok()?) as usize;
        if bytes.len() != 10 + len {
            return None;
        }
        let payload = Bytes::copy_from_slice(&bytes[10..]);
        let tag = Tag {
            origin,
            round,
            step,
        };
        match kind {
            KIND_INITIAL => Some(RbcMessage::Initial { tag, payload }),
            KIND_ECHO => Some(RbcMessage::Echo { tag, payload }),
            KIND_READY => Some(RbcMessage::Ready { tag, payload }),
            _ => None,
        }
    }

    /// The instance tag of this message.
    pub fn tag(&self) -> Tag {
        match self {
            RbcMessage::Initial { tag, .. }
            | RbcMessage::Echo { tag, .. }
            | RbcMessage::Ready { tag, .. } => *tag,
        }
    }
}

#[derive(Debug, Default)]
struct Instance {
    /// Who echoed which payload (payload-keyed sender sets).
    echoes: HashMap<Bytes, BTreeSet<usize>>,
    readies: HashMap<Bytes, BTreeSet<usize>>,
    echoed: bool,
    readied: bool,
    delivered: Option<Bytes>,
}

/// Actions produced by one protocol step.
#[derive(Debug, Default, Eq, PartialEq)]
pub struct RbcOutput {
    /// Messages this process must now send to everyone.
    pub send: Vec<RbcMessage>,
    /// Payloads delivered, as `(tag, payload)`.
    pub deliver: Vec<(Tag, Bytes)>,
}

/// One process's reliable-broadcast engine (all instances).
#[derive(Debug)]
pub struct ReliableBroadcast {
    n: usize,
    f: usize,
    me: usize,
    instances: HashMap<Tag, Instance>,
}

impl ReliableBroadcast {
    /// Creates the engine for process `me` of `n` with at most `f`
    /// Byzantine.
    ///
    /// # Panics
    ///
    /// Panics unless `3f < n` and `me < n`.
    pub fn new(n: usize, f: usize, me: usize) -> Self {
        assert!(3 * f < n, "reliable broadcast requires n > 3f");
        assert!(me < n, "process id out of range");
        ReliableBroadcast {
            n,
            f,
            me,
            instances: HashMap::new(),
        }
    }

    /// Starts broadcasting `payload` under `(round, step)` as this
    /// process's own instance. Returns the messages to send.
    pub fn broadcast(&mut self, round: u32, step: u8, payload: Bytes) -> RbcOutput {
        let tag = Tag {
            origin: self.me,
            round,
            step,
        };
        let mut out = RbcOutput::default();
        out.send.push(RbcMessage::Initial {
            tag,
            payload: payload.clone(),
        });
        out
    }

    /// Processes a message received from link-layer sender `from`
    /// (authenticated by the channel, per the paper's IPSec AH setup).
    pub fn on_message(&mut self, from: usize, msg: &RbcMessage) -> RbcOutput {
        let mut out = RbcOutput::default();
        if from >= self.n {
            return out;
        }
        let tag = msg.tag();
        if tag.origin >= self.n {
            return out;
        }
        match msg {
            RbcMessage::Initial { payload, .. } => {
                // Only the origin may initiate its own instance.
                if from != tag.origin {
                    return out;
                }
                let inst = self.instances.entry(tag).or_default();
                if !inst.echoed {
                    inst.echoed = true;
                    out.send.push(RbcMessage::Echo {
                        tag,
                        payload: payload.clone(),
                    });
                }
            }
            RbcMessage::Echo { payload, .. } => {
                let inst = self.instances.entry(tag).or_default();
                inst.echoes
                    .entry(payload.clone())
                    .or_default()
                    .insert(from);
                self.evaluate(tag, &mut out);
            }
            RbcMessage::Ready { payload, .. } => {
                let inst = self.instances.entry(tag).or_default();
                inst.readies
                    .entry(payload.clone())
                    .or_default()
                    .insert(from);
                self.evaluate(tag, &mut out);
            }
        }
        out
    }

    fn evaluate(&mut self, tag: Tag, out: &mut RbcOutput) {
        let n = self.n;
        let f = self.f;
        let inst = self.instances.get_mut(&tag).expect("caller created it");
        // READY on an echo quorum (> (n+f)/2) or on f+1 READYs.
        if !inst.readied {
            let echo_payload = inst
                .echoes
                .iter()
                .find(|(_, senders)| 2 * senders.len() > n + f)
                .map(|(p, _)| p.clone());
            let ready_payload = inst
                .readies
                .iter()
                .find(|(_, senders)| senders.len() >= f + 1)
                .map(|(p, _)| p.clone());
            if let Some(payload) = echo_payload.or(ready_payload) {
                inst.readied = true;
                out.send.push(RbcMessage::Ready {
                    tag,
                    payload: payload.clone(),
                });
                // Count our own READY too (we will also hear it via
                // loopback, but counting now keeps small groups live even
                // if loopback frames race).
                inst.readies.entry(payload).or_default().insert(self.me);
            }
        }
        // Deliver on 2f+1 READYs.
        if inst.delivered.is_none() {
            let deliverable = inst
                .readies
                .iter()
                .find(|(_, senders)| senders.len() >= 2 * f + 1)
                .map(|(p, _)| p.clone());
            if let Some(payload) = deliverable {
                inst.delivered = Some(payload.clone());
                out.deliver.push((tag, payload));
            }
        }
    }

    /// What this process delivered for `tag`, if anything.
    pub fn delivered(&self, tag: Tag) -> Option<&Bytes> {
        self.instances.get(&tag).and_then(|i| i.delivered.as_ref())
    }

    /// Drops state for instances with `round < min_round` (GC).
    pub fn prune_rounds_below(&mut self, min_round: u32) {
        self.instances.retain(|tag, _| tag.round >= min_round);
    }

    /// Number of live instances (for memory diagnostics).
    pub fn instance_count(&self) -> usize {
        self.instances.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Runs a lossless full-information exchange among `n` engines until
    /// quiescence, starting from `initial` messages sent by each process.
    /// Returns per-process deliveries.
    fn run_network(
        engines: &mut [ReliableBroadcast],
        initial: Vec<(usize, RbcMessage)>,
    ) -> Vec<Vec<(Tag, Bytes)>> {
        let n = engines.len();
        let mut deliveries: Vec<Vec<(Tag, Bytes)>> = vec![Vec::new(); n];
        let mut queue: Vec<(usize, RbcMessage)> = initial;
        while let Some((from, msg)) = queue.pop() {
            for to in 0..n {
                let out = engines[to].on_message(from, &msg);
                for m in out.send {
                    queue.push((to, m));
                }
                deliveries[to].extend(out.deliver);
            }
        }
        deliveries
    }

    fn engines(n: usize, f: usize) -> Vec<ReliableBroadcast> {
        (0..n).map(|me| ReliableBroadcast::new(n, f, me)).collect()
    }

    #[test]
    fn codec_round_trip() {
        let tag = Tag {
            origin: 3,
            round: 9,
            step: 2,
        };
        for msg in [
            RbcMessage::Initial {
                tag,
                payload: Bytes::from_static(b"x"),
            },
            RbcMessage::Echo {
                tag,
                payload: Bytes::from_static(b""),
            },
            RbcMessage::Ready {
                tag,
                payload: Bytes::from_static(b"abc"),
            },
        ] {
            let decoded = RbcMessage::decode(&msg.encode()).expect("valid");
            assert_eq!(decoded, msg);
        }
        assert_eq!(RbcMessage::decode(b"short"), None);
        let mut bad = RbcMessage::Initial {
            tag,
            payload: Bytes::new(),
        }
        .encode()
        .to_vec();
        bad[0] = 9;
        assert_eq!(RbcMessage::decode(&bad), None);
        bad.push(0);
        assert_eq!(RbcMessage::decode(&bad), None);
    }

    #[test]
    fn everyone_delivers_honest_broadcast() {
        let mut engines = engines(4, 1);
        let out = engines[0].broadcast(1, 1, Bytes::from_static(b"hello"));
        let initial: Vec<(usize, RbcMessage)> =
            out.send.into_iter().map(|m| (0usize, m)).collect();
        let deliveries = run_network(&mut engines, initial);
        for (i, d) in deliveries.iter().enumerate() {
            assert_eq!(d.len(), 1, "process {i} delivers exactly once");
            assert_eq!(&d[0].1[..], b"hello");
            assert_eq!(d[0].0.origin, 0);
        }
    }

    #[test]
    fn equivocating_origin_cannot_split_delivery() {
        // Byzantine origin 3 sends INITIAL "a" to half and "b" to the
        // other half. With n=4, f=1 no two correct processes may deliver
        // differently.
        let mut engines = engines(4, 1);
        let tag = Tag {
            origin: 3,
            round: 1,
            step: 1,
        };
        let m_a = RbcMessage::Initial {
            tag,
            payload: Bytes::from_static(b"a"),
        };
        let m_b = RbcMessage::Initial {
            tag,
            payload: Bytes::from_static(b"b"),
        };
        // Deliver the conflicting initials directly (bypassing
        // run_network's everyone-hears-everything model).
        let mut queue: Vec<(usize, RbcMessage)> = Vec::new();
        for (to, msg) in [(0usize, &m_a), (1usize, &m_a), (2usize, &m_b)] {
            let out = engines[to].on_message(3, msg);
            for m in out.send {
                queue.push((to, m));
            }
        }
        // Now run the exchange among correct processes 0..3 only.
        let n = 4;
        let mut deliveries: Vec<Vec<(Tag, Bytes)>> = vec![Vec::new(); n];
        while let Some((from, msg)) = queue.pop() {
            for to in 0..3 {
                let out = engines[to].on_message(from, &msg);
                for m in out.send {
                    queue.push((to, m));
                }
                deliveries[to].extend(out.deliver);
            }
        }
        let delivered: Vec<&Bytes> = deliveries[..3]
            .iter()
            .flat_map(|d| d.iter().map(|(_, p)| p))
            .collect();
        let distinct: BTreeSet<&[u8]> = delivered.iter().map(|b| &b[..]).collect();
        assert!(
            distinct.len() <= 1,
            "correct processes delivered different payloads: {distinct:?}"
        );
    }

    #[test]
    fn initial_from_non_origin_ignored() {
        let mut engines = engines(4, 1);
        let tag = Tag {
            origin: 2,
            round: 1,
            step: 1,
        };
        let forged = RbcMessage::Initial {
            tag,
            payload: Bytes::from_static(b"evil"),
        };
        let out = engines[0].on_message(1, &forged); // sender 1 ≠ origin 2
        assert!(out.send.is_empty());
        assert!(out.deliver.is_empty());
    }

    #[test]
    fn no_delivery_below_ready_threshold() {
        let mut e = ReliableBroadcast::new(4, 1, 0);
        let tag = Tag {
            origin: 1,
            round: 1,
            step: 1,
        };
        let ready = RbcMessage::Ready {
            tag,
            payload: Bytes::from_static(b"v"),
        };
        // 2f+1 = 3 READYs required; one is not enough.
        assert!(e.on_message(1, &ready).deliver.is_empty());
        // The second external READY reaches f+1 = 2 → we amplify with our
        // own READY, which self-counts to 3 = 2f+1 → delivery.
        let out = e.on_message(2, &ready);
        assert_eq!(out.send.len(), 1, "amplification READY");
        assert_eq!(out.deliver.len(), 1);
    }

    #[test]
    fn ready_amplification_from_f_plus_one() {
        let mut e = ReliableBroadcast::new(7, 2, 0);
        let tag = Tag {
            origin: 1,
            round: 1,
            step: 1,
        };
        let ready = RbcMessage::Ready {
            tag,
            payload: Bytes::from_static(b"v"),
        };
        assert!(e.on_message(1, &ready).send.is_empty(), "1 ready: quiet");
        assert!(e.on_message(2, &ready).send.is_empty(), "2 readies: quiet");
        let out = e.on_message(3, &ready);
        assert_eq!(out.send.len(), 1, "f+1 = 3 readies: amplify");
        assert!(matches!(out.send[0], RbcMessage::Ready { .. }));
    }

    #[test]
    fn duplicate_echoes_counted_once() {
        let mut e = ReliableBroadcast::new(4, 1, 0);
        let tag = Tag {
            origin: 1,
            round: 1,
            step: 1,
        };
        let echo = RbcMessage::Echo {
            tag,
            payload: Bytes::from_static(b"v"),
        };
        // Quorum is > (4+1)/2 → 3 senders. The same sender thrice is one.
        for _ in 0..5 {
            assert!(e.on_message(1, &echo).send.is_empty());
        }
        assert!(e.on_message(2, &echo).send.is_empty());
        let out = e.on_message(3, &echo);
        assert_eq!(out.send.len(), 1, "third distinct echo sender → READY");
    }

    #[test]
    fn delivery_happens_once() {
        let mut engines = engines(4, 1);
        let out = engines[1].broadcast(2, 3, Bytes::from_static(b"p"));
        let initial: Vec<(usize, RbcMessage)> =
            out.send.into_iter().map(|m| (1usize, m)).collect();
        let deliveries = run_network(&mut engines, initial);
        for d in &deliveries {
            assert_eq!(d.len(), 1);
        }
        // Feed a straggler READY afterwards: no double delivery.
        let tag = Tag {
            origin: 1,
            round: 2,
            step: 3,
        };
        let late = RbcMessage::Ready {
            tag,
            payload: Bytes::from_static(b"p"),
        };
        assert!(engines[0].on_message(2, &late).deliver.is_empty());
        assert_eq!(engines[0].delivered(tag).map(|b| &b[..]), Some(&b"p"[..]));
    }

    #[test]
    fn prune_drops_old_rounds() {
        let mut e = ReliableBroadcast::new(4, 1, 0);
        for round in 1..=5 {
            let tag = Tag {
                origin: 1,
                round,
                step: 1,
            };
            let _ = e.on_message(
                1,
                &RbcMessage::Initial {
                    tag,
                    payload: Bytes::from_static(b"v"),
                },
            );
        }
        assert_eq!(e.instance_count(), 5);
        e.prune_rounds_below(4);
        assert_eq!(e.instance_count(), 2);
    }

    #[test]
    fn out_of_range_ids_ignored() {
        let mut e = ReliableBroadcast::new(4, 1, 0);
        let tag = Tag {
            origin: 9,
            round: 1,
            step: 1,
        };
        let msg = RbcMessage::Initial {
            tag,
            payload: Bytes::new(),
        };
        assert_eq!(e.on_message(9, &msg), RbcOutput::default());
        assert_eq!(e.on_message(1, &msg), RbcOutput::default());
    }
}
