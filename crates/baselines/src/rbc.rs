//! Bracha's reliable broadcast (the substrate of his consensus
//! protocol).
//!
//! Reliable broadcast prevents equivocation: if a Byzantine sender tries
//! to send different values to different processes, either nobody
//! delivers or everybody delivers the *same* value. The classic echo
//! protocol:
//!
//! 1. The sender broadcasts `INITIAL(m)`.
//! 2. On `INITIAL(m)`: broadcast `ECHO(m)`.
//! 3. On more than `(n+f)/2` `ECHO(m)`: broadcast `READY(m)` (once).
//! 4. On `f + 1` `READY(m)`: broadcast `READY(m)` (once) — amplification.
//! 5. On `2f + 1` `READY(m)`: deliver `m`.
//!
//! Each broadcast *instance* is identified by a [`Tag`] — the origin
//! process plus an application-chosen `(round, step)` label — so one
//! origin can run many broadcasts. A correct origin broadcasts at most
//! one payload per tag; the protocol guarantees all correct processes
//! deliver at most one payload per tag, the same one everywhere.
//!
//! This is the source of Bracha's O(n³) message complexity: every
//! logical broadcast costs `n` ECHOs and `n` READYs from every process.

use bytes::{BufMut, Bytes, BytesMut};
use std::collections::{BTreeSet, HashMap};

/// Identifies one reliable-broadcast instance.
#[derive(Clone, Copy, Debug, Eq, PartialEq, Hash, Ord, PartialOrd)]
pub struct Tag {
    /// The process whose message is being broadcast.
    pub origin: usize,
    /// Application label (consensus round).
    pub round: u32,
    /// Application label (consensus step).
    pub step: u8,
}

/// A reliable-broadcast protocol message.
#[derive(Clone, Debug, Eq, PartialEq)]
pub enum RbcMessage {
    /// The origin's initial transmission.
    Initial {
        /// Instance tag (its `origin` must equal the link-layer sender).
        tag: Tag,
        /// The payload being broadcast.
        payload: Bytes,
    },
    /// A witness echo.
    Echo {
        /// Instance tag.
        tag: Tag,
        /// The echoed payload.
        payload: Bytes,
    },
    /// A delivery-readiness attestation.
    Ready {
        /// Instance tag.
        tag: Tag,
        /// The payload attested.
        payload: Bytes,
    },
}

const KIND_INITIAL: u8 = 1;
const KIND_ECHO: u8 = 2;
const KIND_READY: u8 = 3;

/// Fixed wire-header length: kind, origin, round, step, payload len.
const RBC_HEADER_LEN: usize = 1 + 2 + 4 + 1 + 2;

impl RbcMessage {
    /// Encodes for transmission.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(RBC_HEADER_LEN + self.payload().len());
        self.encode_into(&mut buf);
        buf.freeze()
    }

    /// Writes the wire encoding into any [`BufMut`] — the same bytes
    /// [`RbcMessage::encode`] produces, without forcing a fresh buffer
    /// (arena callers pass [`bytes::arena::EncodeArena::buf`]).
    pub fn encode_into<B: BufMut>(&self, buf: &mut B) {
        let (kind, tag, payload) = match self {
            RbcMessage::Initial { tag, payload } => (KIND_INITIAL, tag, payload),
            RbcMessage::Echo { tag, payload } => (KIND_ECHO, tag, payload),
            RbcMessage::Ready { tag, payload } => (KIND_READY, tag, payload),
        };
        buf.put_u8(kind);
        buf.put_u16(tag.origin as u16);
        buf.put_u32(tag.round);
        buf.put_u8(tag.step);
        buf.put_u16(payload.len() as u16);
        buf.put_slice(payload);
    }

    /// The payload borne by this message (any variant).
    pub fn payload(&self) -> &Bytes {
        match self {
            RbcMessage::Initial { payload, .. }
            | RbcMessage::Echo { payload, .. }
            | RbcMessage::Ready { payload, .. } => payload,
        }
    }

    /// Decodes from wire bytes; `None` for malformed input.
    pub fn decode(bytes: &[u8]) -> Option<RbcMessage> {
        if bytes.len() < 10 {
            return None;
        }
        let kind = bytes[0];
        let origin = u16::from_be_bytes(bytes[1..3].try_into().ok()?) as usize;
        let round = u32::from_be_bytes(bytes[3..7].try_into().ok()?);
        let step = bytes[7];
        let len = u16::from_be_bytes(bytes[8..10].try_into().ok()?) as usize;
        if bytes.len() != 10 + len {
            return None;
        }
        let payload = Bytes::copy_from_slice(&bytes[10..]);
        let tag = Tag {
            origin,
            round,
            step,
        };
        match kind {
            KIND_INITIAL => Some(RbcMessage::Initial { tag, payload }),
            KIND_ECHO => Some(RbcMessage::Echo { tag, payload }),
            KIND_READY => Some(RbcMessage::Ready { tag, payload }),
            _ => None,
        }
    }

    /// The instance tag of this message.
    pub fn tag(&self) -> Tag {
        match self {
            RbcMessage::Initial { tag, .. }
            | RbcMessage::Echo { tag, .. }
            | RbcMessage::Ready { tag, .. } => *tag,
        }
    }
}

/// A borrowed, zero-copy view of one encoded [`RbcMessage`]: the
/// payload stays an offset range into the receive buffer instead of
/// being copied into a fresh [`Bytes`] at decode time
/// ([`RbcView::parse`] accepts and rejects exactly the inputs
/// [`RbcMessage::decode`] does). [`ReliableBroadcast::on_view`]
/// consumes the view directly, materializing an owned copy of the
/// payload only when it first enters a sender table or an outgoing
/// echo (DESIGN.md §13).
#[derive(Clone, Copy, Debug, Eq, PartialEq)]
pub struct RbcView<'a> {
    kind: u8,
    tag: Tag,
    payload: &'a [u8],
}

impl<'a> RbcView<'a> {
    /// Parses wire bytes without copying the payload. Returns `None`
    /// exactly when [`RbcMessage::decode`] would: short input, a
    /// length field disagreeing with the buffer, or an unknown kind.
    pub fn parse(bytes: &'a [u8]) -> Option<RbcView<'a>> {
        if bytes.len() < RBC_HEADER_LEN {
            return None;
        }
        let kind = bytes[0];
        let origin = u16::from_be_bytes(bytes[1..3].try_into().ok()?) as usize;
        let round = u32::from_be_bytes(bytes[3..7].try_into().ok()?);
        let step = bytes[7];
        let len = u16::from_be_bytes(bytes[8..10].try_into().ok()?) as usize;
        if bytes.len() != RBC_HEADER_LEN + len {
            return None;
        }
        if !matches!(kind, KIND_INITIAL | KIND_ECHO | KIND_READY) {
            return None;
        }
        Some(RbcView {
            kind,
            tag: Tag {
                origin,
                round,
                step,
            },
            payload: &bytes[RBC_HEADER_LEN..],
        })
    }

    /// The instance tag of this message.
    pub fn tag(&self) -> Tag {
        self.tag
    }

    /// The payload, borrowed from the receive buffer.
    pub fn payload(&self) -> &'a [u8] {
        self.payload
    }

    /// Materializes the owned [`RbcMessage`] this view describes
    /// (copies the payload).
    pub fn to_message(&self) -> RbcMessage {
        let tag = self.tag;
        let payload = Bytes::copy_from_slice(self.payload);
        match self.kind {
            KIND_INITIAL => RbcMessage::Initial { tag, payload },
            KIND_ECHO => RbcMessage::Echo { tag, payload },
            _ => RbcMessage::Ready { tag, payload },
        }
    }
}

/// Credits the telemetry counters for one elided legacy decode copy of
/// a `len`-byte payload: `Bytes::copy_from_slice` costs one buffer
/// plus one `Arc` under the vendored stub.
fn credit_elided_copy(len: usize) {
    bytes::telemetry::count_saved(len);
    bytes::telemetry::count_allocs_saved(2);
}

#[derive(Debug, Default)]
struct Instance {
    /// Who echoed which payload (payload-keyed sender sets).
    echoes: HashMap<Bytes, BTreeSet<usize>>,
    readies: HashMap<Bytes, BTreeSet<usize>>,
    echoed: bool,
    readied: bool,
    delivered: Option<Bytes>,
}

/// Actions produced by one protocol step.
#[derive(Debug, Default, Eq, PartialEq)]
pub struct RbcOutput {
    /// Messages this process must now send to everyone.
    pub send: Vec<RbcMessage>,
    /// Payloads delivered, as `(tag, payload)`.
    pub deliver: Vec<(Tag, Bytes)>,
}

/// One process's reliable-broadcast engine (all instances).
#[derive(Debug)]
pub struct ReliableBroadcast {
    n: usize,
    f: usize,
    me: usize,
    instances: HashMap<Tag, Instance>,
}

impl ReliableBroadcast {
    /// Creates the engine for process `me` of `n` with at most `f`
    /// Byzantine.
    ///
    /// # Panics
    ///
    /// Panics unless `3f < n` and `me < n`.
    pub fn new(n: usize, f: usize, me: usize) -> Self {
        assert!(3 * f < n, "reliable broadcast requires n > 3f");
        assert!(me < n, "process id out of range");
        ReliableBroadcast {
            n,
            f,
            me,
            instances: HashMap::new(),
        }
    }

    /// Starts broadcasting `payload` under `(round, step)` as this
    /// process's own instance. Returns the messages to send.
    pub fn broadcast(&mut self, round: u32, step: u8, payload: Bytes) -> RbcOutput {
        let tag = Tag {
            origin: self.me,
            round,
            step,
        };
        let mut out = RbcOutput::default();
        out.send.push(RbcMessage::Initial {
            tag,
            payload: payload.clone(),
        });
        out
    }

    /// Processes a message received from link-layer sender `from`
    /// (authenticated by the channel, per the paper's IPSec AH setup).
    pub fn on_message(&mut self, from: usize, msg: &RbcMessage) -> RbcOutput {
        let mut out = RbcOutput::default();
        if from >= self.n {
            return out;
        }
        let tag = msg.tag();
        if tag.origin >= self.n {
            return out;
        }
        match msg {
            RbcMessage::Initial { payload, .. } => {
                // Only the origin may initiate its own instance.
                if from != tag.origin {
                    return out;
                }
                let inst = self.instances.entry(tag).or_default();
                if !inst.echoed {
                    inst.echoed = true;
                    out.send.push(RbcMessage::Echo {
                        tag,
                        payload: payload.clone(),
                    });
                }
            }
            RbcMessage::Echo { payload, .. } => {
                let inst = self.instances.entry(tag).or_default();
                inst.echoes
                    .entry(payload.clone())
                    .or_default()
                    .insert(from);
                self.evaluate(tag, &mut out);
            }
            RbcMessage::Ready { payload, .. } => {
                let inst = self.instances.entry(tag).or_default();
                inst.readies
                    .entry(payload.clone())
                    .or_default()
                    .insert(from);
                self.evaluate(tag, &mut out);
            }
        }
        out
    }

    /// Processes a borrowed [`RbcView`] — the same transition function
    /// as [`ReliableBroadcast::on_message`], but the payload is copied
    /// into an owned [`Bytes`] only when it first enters a sender
    /// table or an outgoing echo. Duplicate payloads probe the tables
    /// by raw slice and allocate nothing; each elided legacy decode
    /// copy is credited to the [`bytes::telemetry`] counters.
    pub fn on_view(&mut self, from: usize, view: &RbcView<'_>) -> RbcOutput {
        let mut out = RbcOutput::default();
        if from >= self.n {
            return out;
        }
        let tag = view.tag;
        if tag.origin >= self.n {
            return out;
        }
        match view.kind {
            KIND_INITIAL => {
                // Only the origin may initiate its own instance.
                if from != tag.origin {
                    return out;
                }
                let inst = self.instances.entry(tag).or_default();
                if !inst.echoed {
                    inst.echoed = true;
                    out.send.push(RbcMessage::Echo {
                        tag,
                        payload: Bytes::copy_from_slice(view.payload),
                    });
                } else {
                    credit_elided_copy(view.payload.len());
                }
            }
            KIND_ECHO => {
                let inst = self.instances.entry(tag).or_default();
                if let Some(senders) = inst.echoes.get_mut(view.payload) {
                    senders.insert(from);
                    credit_elided_copy(view.payload.len());
                } else {
                    inst.echoes
                        .insert(Bytes::copy_from_slice(view.payload), BTreeSet::from([from]));
                }
                self.evaluate(tag, &mut out);
            }
            _ => {
                let inst = self.instances.entry(tag).or_default();
                if let Some(senders) = inst.readies.get_mut(view.payload) {
                    senders.insert(from);
                    credit_elided_copy(view.payload.len());
                } else {
                    inst.readies
                        .insert(Bytes::copy_from_slice(view.payload), BTreeSet::from([from]));
                }
                self.evaluate(tag, &mut out);
            }
        }
        out
    }

    fn evaluate(&mut self, tag: Tag, out: &mut RbcOutput) {
        let n = self.n;
        let f = self.f;
        let inst = self.instances.get_mut(&tag).expect("caller created it");
        // READY on an echo quorum (> (n+f)/2) or on f+1 READYs.
        if !inst.readied {
            let echo_payload = inst
                .echoes
                .iter()
                .find(|(_, senders)| 2 * senders.len() > n + f)
                .map(|(p, _)| p.clone());
            let ready_payload = inst
                .readies
                .iter()
                .find(|(_, senders)| senders.len() >= f + 1)
                .map(|(p, _)| p.clone());
            if let Some(payload) = echo_payload.or(ready_payload) {
                inst.readied = true;
                out.send.push(RbcMessage::Ready {
                    tag,
                    payload: payload.clone(),
                });
                // Count our own READY too (we will also hear it via
                // loopback, but counting now keeps small groups live even
                // if loopback frames race).
                inst.readies.entry(payload).or_default().insert(self.me);
            }
        }
        // Deliver on 2f+1 READYs.
        if inst.delivered.is_none() {
            let deliverable = inst
                .readies
                .iter()
                .find(|(_, senders)| senders.len() >= 2 * f + 1)
                .map(|(p, _)| p.clone());
            if let Some(payload) = deliverable {
                inst.delivered = Some(payload.clone());
                out.deliver.push((tag, payload));
            }
        }
    }

    /// What this process delivered for `tag`, if anything.
    pub fn delivered(&self, tag: Tag) -> Option<&Bytes> {
        self.instances.get(&tag).and_then(|i| i.delivered.as_ref())
    }

    /// Drops state for instances with `round < min_round` (GC).
    pub fn prune_rounds_below(&mut self, min_round: u32) {
        self.instances.retain(|tag, _| tag.round >= min_round);
    }

    /// Number of live instances (for memory diagnostics).
    pub fn instance_count(&self) -> usize {
        self.instances.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Runs a lossless full-information exchange among `n` engines until
    /// quiescence, starting from `initial` messages sent by each process.
    /// Returns per-process deliveries.
    fn run_network(
        engines: &mut [ReliableBroadcast],
        initial: Vec<(usize, RbcMessage)>,
    ) -> Vec<Vec<(Tag, Bytes)>> {
        let n = engines.len();
        let mut deliveries: Vec<Vec<(Tag, Bytes)>> = vec![Vec::new(); n];
        let mut queue: Vec<(usize, RbcMessage)> = initial;
        while let Some((from, msg)) = queue.pop() {
            for to in 0..n {
                let out = engines[to].on_message(from, &msg);
                for m in out.send {
                    queue.push((to, m));
                }
                deliveries[to].extend(out.deliver);
            }
        }
        deliveries
    }

    fn engines(n: usize, f: usize) -> Vec<ReliableBroadcast> {
        (0..n).map(|me| ReliableBroadcast::new(n, f, me)).collect()
    }

    #[test]
    fn codec_round_trip() {
        let tag = Tag {
            origin: 3,
            round: 9,
            step: 2,
        };
        for msg in [
            RbcMessage::Initial {
                tag,
                payload: Bytes::from_static(b"x"),
            },
            RbcMessage::Echo {
                tag,
                payload: Bytes::from_static(b""),
            },
            RbcMessage::Ready {
                tag,
                payload: Bytes::from_static(b"abc"),
            },
        ] {
            let decoded = RbcMessage::decode(&msg.encode()).expect("valid");
            assert_eq!(decoded, msg);
        }
        assert_eq!(RbcMessage::decode(b"short"), None);
        let mut bad = RbcMessage::Initial {
            tag,
            payload: Bytes::new(),
        }
        .encode()
        .to_vec();
        bad[0] = 9;
        assert_eq!(RbcMessage::decode(&bad), None);
        bad.push(0);
        assert_eq!(RbcMessage::decode(&bad), None);
    }

    #[test]
    fn everyone_delivers_honest_broadcast() {
        let mut engines = engines(4, 1);
        let out = engines[0].broadcast(1, 1, Bytes::from_static(b"hello"));
        let initial: Vec<(usize, RbcMessage)> =
            out.send.into_iter().map(|m| (0usize, m)).collect();
        let deliveries = run_network(&mut engines, initial);
        for (i, d) in deliveries.iter().enumerate() {
            assert_eq!(d.len(), 1, "process {i} delivers exactly once");
            assert_eq!(&d[0].1[..], b"hello");
            assert_eq!(d[0].0.origin, 0);
        }
    }

    #[test]
    fn equivocating_origin_cannot_split_delivery() {
        // Byzantine origin 3 sends INITIAL "a" to half and "b" to the
        // other half. With n=4, f=1 no two correct processes may deliver
        // differently.
        let mut engines = engines(4, 1);
        let tag = Tag {
            origin: 3,
            round: 1,
            step: 1,
        };
        let m_a = RbcMessage::Initial {
            tag,
            payload: Bytes::from_static(b"a"),
        };
        let m_b = RbcMessage::Initial {
            tag,
            payload: Bytes::from_static(b"b"),
        };
        // Deliver the conflicting initials directly (bypassing
        // run_network's everyone-hears-everything model).
        let mut queue: Vec<(usize, RbcMessage)> = Vec::new();
        for (to, msg) in [(0usize, &m_a), (1usize, &m_a), (2usize, &m_b)] {
            let out = engines[to].on_message(3, msg);
            for m in out.send {
                queue.push((to, m));
            }
        }
        // Now run the exchange among correct processes 0..3 only.
        let n = 4;
        let mut deliveries: Vec<Vec<(Tag, Bytes)>> = vec![Vec::new(); n];
        while let Some((from, msg)) = queue.pop() {
            for to in 0..3 {
                let out = engines[to].on_message(from, &msg);
                for m in out.send {
                    queue.push((to, m));
                }
                deliveries[to].extend(out.deliver);
            }
        }
        let delivered: Vec<&Bytes> = deliveries[..3]
            .iter()
            .flat_map(|d| d.iter().map(|(_, p)| p))
            .collect();
        let distinct: BTreeSet<&[u8]> = delivered.iter().map(|b| &b[..]).collect();
        assert!(
            distinct.len() <= 1,
            "correct processes delivered different payloads: {distinct:?}"
        );
    }

    #[test]
    fn initial_from_non_origin_ignored() {
        let mut engines = engines(4, 1);
        let tag = Tag {
            origin: 2,
            round: 1,
            step: 1,
        };
        let forged = RbcMessage::Initial {
            tag,
            payload: Bytes::from_static(b"evil"),
        };
        let out = engines[0].on_message(1, &forged); // sender 1 ≠ origin 2
        assert!(out.send.is_empty());
        assert!(out.deliver.is_empty());
    }

    #[test]
    fn no_delivery_below_ready_threshold() {
        let mut e = ReliableBroadcast::new(4, 1, 0);
        let tag = Tag {
            origin: 1,
            round: 1,
            step: 1,
        };
        let ready = RbcMessage::Ready {
            tag,
            payload: Bytes::from_static(b"v"),
        };
        // 2f+1 = 3 READYs required; one is not enough.
        assert!(e.on_message(1, &ready).deliver.is_empty());
        // The second external READY reaches f+1 = 2 → we amplify with our
        // own READY, which self-counts to 3 = 2f+1 → delivery.
        let out = e.on_message(2, &ready);
        assert_eq!(out.send.len(), 1, "amplification READY");
        assert_eq!(out.deliver.len(), 1);
    }

    #[test]
    fn ready_amplification_from_f_plus_one() {
        let mut e = ReliableBroadcast::new(7, 2, 0);
        let tag = Tag {
            origin: 1,
            round: 1,
            step: 1,
        };
        let ready = RbcMessage::Ready {
            tag,
            payload: Bytes::from_static(b"v"),
        };
        assert!(e.on_message(1, &ready).send.is_empty(), "1 ready: quiet");
        assert!(e.on_message(2, &ready).send.is_empty(), "2 readies: quiet");
        let out = e.on_message(3, &ready);
        assert_eq!(out.send.len(), 1, "f+1 = 3 readies: amplify");
        assert!(matches!(out.send[0], RbcMessage::Ready { .. }));
    }

    #[test]
    fn duplicate_echoes_counted_once() {
        let mut e = ReliableBroadcast::new(4, 1, 0);
        let tag = Tag {
            origin: 1,
            round: 1,
            step: 1,
        };
        let echo = RbcMessage::Echo {
            tag,
            payload: Bytes::from_static(b"v"),
        };
        // Quorum is > (4+1)/2 → 3 senders. The same sender thrice is one.
        for _ in 0..5 {
            assert!(e.on_message(1, &echo).send.is_empty());
        }
        assert!(e.on_message(2, &echo).send.is_empty());
        let out = e.on_message(3, &echo);
        assert_eq!(out.send.len(), 1, "third distinct echo sender → READY");
    }

    #[test]
    fn delivery_happens_once() {
        let mut engines = engines(4, 1);
        let out = engines[1].broadcast(2, 3, Bytes::from_static(b"p"));
        let initial: Vec<(usize, RbcMessage)> =
            out.send.into_iter().map(|m| (1usize, m)).collect();
        let deliveries = run_network(&mut engines, initial);
        for d in &deliveries {
            assert_eq!(d.len(), 1);
        }
        // Feed a straggler READY afterwards: no double delivery.
        let tag = Tag {
            origin: 1,
            round: 2,
            step: 3,
        };
        let late = RbcMessage::Ready {
            tag,
            payload: Bytes::from_static(b"p"),
        };
        assert!(engines[0].on_message(2, &late).deliver.is_empty());
        assert_eq!(engines[0].delivered(tag).map(|b| &b[..]), Some(&b"p"[..]));
    }

    #[test]
    fn prune_drops_old_rounds() {
        let mut e = ReliableBroadcast::new(4, 1, 0);
        for round in 1..=5 {
            let tag = Tag {
                origin: 1,
                round,
                step: 1,
            };
            let _ = e.on_message(
                1,
                &RbcMessage::Initial {
                    tag,
                    payload: Bytes::from_static(b"v"),
                },
            );
        }
        assert_eq!(e.instance_count(), 5);
        e.prune_rounds_below(4);
        assert_eq!(e.instance_count(), 2);
    }

    #[test]
    fn out_of_range_ids_ignored() {
        let mut e = ReliableBroadcast::new(4, 1, 0);
        let tag = Tag {
            origin: 9,
            round: 1,
            step: 1,
        };
        let msg = RbcMessage::Initial {
            tag,
            payload: Bytes::new(),
        };
        assert_eq!(e.on_message(9, &msg), RbcOutput::default());
        assert_eq!(e.on_message(1, &msg), RbcOutput::default());
    }

    #[test]
    fn encode_into_matches_encode() {
        let tag = Tag {
            origin: 5,
            round: 12,
            step: 3,
        };
        for msg in [
            RbcMessage::Initial {
                tag,
                payload: Bytes::copy_from_slice(b"payload"),
            },
            RbcMessage::Echo {
                tag,
                payload: Bytes::new(),
            },
            RbcMessage::Ready {
                tag,
                payload: Bytes::copy_from_slice(&[0xff; 40]),
            },
        ] {
            let mut staged = Vec::new();
            staged.put_slice(b"prefix"); // arena chunks append mid-buffer
            msg.encode_into(&mut staged);
            assert_eq!(&staged[6..], &msg.encode()[..]);
        }
    }

    /// Mirrored engines driven by the owned decoder and the borrowed
    /// view stay in lockstep through an entire honest broadcast.
    #[test]
    fn view_engine_matches_message_engine() {
        let n = 4;
        let mut owned: Vec<ReliableBroadcast> =
            (0..n).map(|me| ReliableBroadcast::new(n, 1, me)).collect();
        let mut viewed: Vec<ReliableBroadcast> =
            (0..n).map(|me| ReliableBroadcast::new(n, 1, me)).collect();
        let start = owned[2].broadcast(7, 2, Bytes::copy_from_slice(b"lockstep"));
        let _ = viewed[2].broadcast(7, 2, Bytes::copy_from_slice(b"lockstep"));
        let mut queue: Vec<(usize, Bytes)> = start
            .send
            .iter()
            .map(|m| (2usize, m.encode()))
            .collect();
        while let Some((from, bytes)) = queue.pop() {
            for to in 0..n {
                let msg = RbcMessage::decode(&bytes).expect("valid");
                let a = owned[to].on_message(from, &msg);
                let view = RbcView::parse(&bytes).expect("valid");
                let b = viewed[to].on_view(from, &view);
                assert_eq!(a, b, "outputs diverged at process {to}");
                queue.extend(a.send.into_iter().map(|m| (to, m.encode())));
            }
        }
        for (a, b) in owned.iter().zip(&viewed) {
            let tag = Tag {
                origin: 2,
                round: 7,
                step: 2,
            };
            assert_eq!(a.delivered(tag), b.delivered(tag));
        }
    }

    /// Duplicate payloads probe the sender tables without copying, and
    /// the elided copies show up in the telemetry counters.
    #[test]
    fn view_duplicates_save_copies() {
        let mut e = ReliableBroadcast::new(7, 2, 0);
        let tag = Tag {
            origin: 1,
            round: 1,
            step: 1,
        };
        let wire = RbcMessage::Echo {
            tag,
            payload: Bytes::copy_from_slice(b"dup-payload"),
        }
        .encode();
        let view = RbcView::parse(&wire).expect("valid");
        let copied0 = bytes::telemetry::bytes_copied();
        let saved0 = bytes::telemetry::bytes_saved();
        let allocs0 = bytes::telemetry::allocs_saved();
        let _ = e.on_view(1, &view); // first sight: one owned key copy
        assert_eq!(bytes::telemetry::bytes_copied(), copied0 + 11);
        assert_eq!(bytes::telemetry::bytes_saved(), saved0);
        let _ = e.on_view(2, &view); // duplicate: zero copies
        assert_eq!(bytes::telemetry::bytes_copied(), copied0 + 11);
        assert_eq!(bytes::telemetry::bytes_saved(), saved0 + 11);
        assert_eq!(bytes::telemetry::allocs_saved(), allocs0 + 2);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(256))]

        /// [`RbcView::parse`] accepts and rejects exactly the byte
        /// strings [`RbcMessage::decode`] does, and agrees on content.
        #[test]
        fn view_parse_agrees_with_decode(bytes in proptest::collection::vec(proptest::arbitrary::any::<u8>(), 0..64)) {
            let owned = RbcMessage::decode(&bytes);
            let view = RbcView::parse(&bytes);
            match (owned, view) {
                (None, None) => {}
                (Some(m), Some(v)) => proptest::prop_assert_eq!(m, v.to_message()),
                (m, v) => proptest::prop_assert!(false, "divergence: {:?} vs {:?}", m, v),
            }
        }

        /// Error parity on every truncation prefix and on trailing
        /// garbage, for every message kind.
        #[test]
        fn view_error_parity_on_mangled_wire(
            kind in 1u8..4,
            origin in 0u16..9,
            round in 1u32..100,
            step in 0u8..4,
            payload in proptest::collection::vec(proptest::arbitrary::any::<u8>(), 0..24),
        ) {
            let tag = Tag { origin: origin as usize, round, step };
            let payload = Bytes::copy_from_slice(&payload);
            let msg = match kind {
                1 => RbcMessage::Initial { tag, payload },
                2 => RbcMessage::Echo { tag, payload },
                _ => RbcMessage::Ready { tag, payload },
            };
            let wire = msg.encode();
            for cut in 0..=wire.len() {
                let prefix = &wire[..cut];
                let owned = RbcMessage::decode(prefix);
                let view = RbcView::parse(prefix).map(|v| v.to_message());
                proptest::prop_assert_eq!(&owned, &view, "cut={}", cut);
                if cut == wire.len() {
                    proptest::prop_assert_eq!(owned, Some(msg.clone()));
                }
            }
            let mut trailing = wire.to_vec();
            trailing.push(0);
            proptest::prop_assert_eq!(RbcMessage::decode(&trailing), None);
            proptest::prop_assert!(RbcView::parse(&trailing).is_none());
        }
    }
}
