//! Deterministic adversarial schedule explorer for the consensus
//! engines.
//!
//! The simulator (`wireless-net`) answers "does the protocol survive a
//! realistic lossy broadcast medium?"; this crate answers the
//! complementary question "does the protocol survive a *hostile
//! scheduler*?". It drives the sans-io engines — `turquois-core`'s
//! Turquois and `turquois-baselines`' Bracha and ABBA — directly,
//! with no radio model in between, through seeded adversarial delivery
//! schedules: per-(round, sender, receiver) drops, delays, and
//! duplicates plus Byzantine equivocation, all inside a bounded
//! adversarial window so eventual decision stays checkable.
//!
//! - [`schedule`] — the schedule model and the seeded generator.
//! - [`drive`] — executes a schedule against the real engines and
//!   checks agreement, validity, and (within the σ omission budget)
//!   eventual decision.
//! - [`mod@shrink`] — greedy minimisation of failing schedules.
//! - [`replay`] — the `tests/fixtures/*.schedule` text format.
//! - [`mod@explore`] — parallel sweeps over thousands of schedules with a
//!   byte-identical report at any `TURQUOIS_THREADS`.
//!
//! The crate is test infrastructure: nothing here runs in the
//! experiment binaries, and its only parallelism is borrowed from
//! `turquois_harness::runner`, keeping the engines and the simulator
//! single-threaded as required.
//!
//! Building with `--features mutation-smoke` plants a deliberate
//! quorum off-by-one inside `turquois-core` (see
//! `Config::exceeds_quorum`) that the explorer must find and shrink —
//! a self-test proving the search has teeth. Never enable that feature
//! outside `cargo test -p turquois-check`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod drive;
pub mod explore;
pub mod replay;
pub mod schedule;
pub mod shrink;

pub use drive::{run_schedule, RunReport, Violation};
pub use explore::{explore, ExploreConfig, ExploreReport, PanicRecord, ViolationRecord};
pub use replay::{parse, to_text, Expectation};
pub use schedule::{generate, EngineKind, Fault, FaultKind, GenParams, Partition, Schedule};
pub use shrink::{shrink, ShrinkResult};
