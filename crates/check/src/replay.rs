//! Serialization of schedules as replay fixtures.
//!
//! Shrunk counterexamples (and interesting clean schedules) are stored
//! as small line-based text files under `tests/fixtures/*.schedule` and
//! re-executed byte-for-byte by a plain `#[test]`. The format is meant
//! to be written and reviewed by humans:
//!
//! ```text
//! # free-form comment lines
//! engine turquois            # turquois | bracha | abba
//! n 5
//! seed 42
//! window 4
//! max-rounds 40
//! proposals 1 0 1 0 1        # one bit per process, in id order
//! byz 4 split 3              # id, strategy (split|flip), receiver mask
//! partition 7 1 13           # side-A mask, split round, heal round
//! fault drop 2 0 3           # round from to
//! fault delay 2 1 3 2        # round from to extra-rounds
//! fault dup 3 0 1            # round from to
//! expect clean               # clean | agreement-violation | ...
//! ```
//!
//! `expect` records what replaying the schedule must produce:
//! `clean` (no violation) or `<kind>-violation` with `kind` one of
//! `agreement`, `validity`, `liveness`. [`to_text`] and [`parse`]
//! round-trip exactly, so fixtures stay in canonical form.

use crate::schedule::{ByzSpec, ByzStrategy, EngineKind, Fault, FaultKind, Partition, Schedule};

/// What replaying a fixture must produce.
#[derive(Clone, Copy, Debug, Eq, PartialEq)]
pub enum Expectation {
    /// No violation.
    Clean,
    /// A violation of the named kind (`agreement`, `validity`,
    /// `liveness`).
    Violation(&'static str),
}

impl Expectation {
    /// The `expect` line payload.
    pub fn as_str(&self) -> &'static str {
        match self {
            Expectation::Clean => "clean",
            Expectation::Violation("agreement") => "agreement-violation",
            Expectation::Violation("validity") => "validity-violation",
            Expectation::Violation("liveness") => "liveness-violation",
            Expectation::Violation(_) => unreachable!("constructed only via parse/kind"),
        }
    }

    fn parse(word: &str) -> Result<Expectation, String> {
        match word {
            "clean" => Ok(Expectation::Clean),
            "agreement-violation" => Ok(Expectation::Violation("agreement")),
            "validity-violation" => Ok(Expectation::Violation("validity")),
            "liveness-violation" => Ok(Expectation::Violation("liveness")),
            other => Err(format!("unknown expectation `{other}`")),
        }
    }
}

/// Renders a schedule in the canonical fixture format.
pub fn to_text(s: &Schedule, expect: Expectation, comments: &[&str]) -> String {
    let mut out = String::new();
    for c in comments {
        out.push_str("# ");
        out.push_str(c);
        out.push('\n');
    }
    out.push_str(&format!("engine {}\n", s.engine.name()));
    out.push_str(&format!("n {}\n", s.n));
    out.push_str(&format!("seed {}\n", s.seed));
    out.push_str(&format!("window {}\n", s.window));
    out.push_str(&format!("max-rounds {}\n", s.max_rounds));
    let bits: Vec<&str> = s.proposals.iter().map(|&p| if p { "1" } else { "0" }).collect();
    out.push_str(&format!("proposals {}\n", bits.join(" ")));
    for b in &s.byz {
        out.push_str(&format!("byz {} {} {}\n", b.id, b.strategy.name(), b.mask));
    }
    if let Some(p) = &s.partition {
        out.push_str(&format!(
            "partition {} {} {}\n",
            p.mask, p.split_round, p.heal_round
        ));
    }
    for f in &s.faults {
        match f.kind {
            FaultKind::Drop => {
                out.push_str(&format!("fault drop {} {} {}\n", f.round, f.from, f.to))
            }
            FaultKind::Delay(by) => out.push_str(&format!(
                "fault delay {} {} {} {}\n",
                f.round, f.from, f.to, by
            )),
            FaultKind::Duplicate => {
                out.push_str(&format!("fault dup {} {} {}\n", f.round, f.from, f.to))
            }
        }
    }
    out.push_str(&format!("expect {}\n", expect.as_str()));
    out
}

/// Parses a fixture back into a schedule and its expectation.
///
/// Errors carry the offending line. Unknown keys are errors (fixtures
/// are checked in; silent tolerance would mask typos).
pub fn parse(text: &str) -> Result<(Schedule, Expectation), String> {
    let mut engine = None;
    let mut n = None;
    let mut seed = None;
    let mut window = None;
    let mut max_rounds = None;
    let mut proposals = None;
    let mut byz = Vec::new();
    let mut partition = None;
    let mut faults = Vec::new();
    let mut expect = None;

    for raw in text.lines() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut words = line.split_whitespace();
        let key = words.next().expect("non-empty line has a first word");
        let rest: Vec<&str> = words.collect();
        let ctx = |e: String| format!("{e} in line `{raw}`");
        match key {
            "engine" => {
                let name = one(&rest).map_err(ctx)?;
                engine = Some(EngineKind::parse(name).ok_or_else(|| {
                    ctx(format!("unknown engine `{name}`"))
                })?);
            }
            "n" => n = Some(num::<usize>(one(&rest).map_err(ctx)?).map_err(ctx)?),
            "seed" => seed = Some(num::<u64>(one(&rest).map_err(ctx)?).map_err(ctx)?),
            "window" => window = Some(num::<u32>(one(&rest).map_err(ctx)?).map_err(ctx)?),
            "max-rounds" => max_rounds = Some(num::<u32>(one(&rest).map_err(ctx)?).map_err(ctx)?),
            "proposals" => {
                let mut bits = Vec::new();
                for w in &rest {
                    bits.push(match *w {
                        "1" => true,
                        "0" => false,
                        other => return Err(ctx(format!("proposal bit `{other}`"))),
                    });
                }
                proposals = Some(bits);
            }
            "byz" => {
                if rest.len() != 3 {
                    return Err(ctx("byz needs `id strategy mask`".into()));
                }
                byz.push(ByzSpec {
                    id: num(rest[0]).map_err(ctx)?,
                    strategy: ByzStrategy::parse(rest[1])
                        .ok_or_else(|| ctx(format!("unknown strategy `{}`", rest[1])))?,
                    mask: num(rest[2]).map_err(ctx)?,
                });
            }
            "partition" => {
                if rest.len() != 3 {
                    return Err(ctx("partition needs `mask split-round heal-round`".into()));
                }
                if partition.is_some() {
                    return Err(ctx("duplicate partition line".into()));
                }
                partition = Some(Partition {
                    mask: num(rest[0]).map_err(ctx)?,
                    split_round: num(rest[1]).map_err(ctx)?,
                    heal_round: num(rest[2]).map_err(ctx)?,
                });
            }
            "fault" => {
                let (kind_word, args) = rest
                    .split_first()
                    .ok_or_else(|| ctx("fault needs a kind".into()))?;
                let (kind, expect_args) = match *kind_word {
                    "drop" => (FaultKind::Drop, 3),
                    "dup" => (FaultKind::Duplicate, 3),
                    "delay" => (FaultKind::Delay(0), 4),
                    other => return Err(ctx(format!("unknown fault kind `{other}`"))),
                };
                if args.len() != expect_args {
                    return Err(ctx(format!("fault {kind_word} needs {expect_args} args")));
                }
                let kind = if let FaultKind::Delay(_) = kind {
                    FaultKind::Delay(num(args[3]).map_err(ctx)?)
                } else {
                    kind
                };
                faults.push(Fault {
                    round: num(args[0]).map_err(ctx)?,
                    from: num(args[1]).map_err(ctx)?,
                    to: num(args[2]).map_err(ctx)?,
                    kind,
                });
            }
            "expect" => expect = Some(Expectation::parse(one(&rest).map_err(ctx)?).map_err(ctx)?),
            other => return Err(ctx(format!("unknown key `{other}`"))),
        }
    }

    let schedule = Schedule {
        engine: engine.ok_or("missing `engine` line")?,
        n: n.ok_or("missing `n` line")?,
        seed: seed.ok_or("missing `seed` line")?,
        proposals: proposals.ok_or("missing `proposals` line")?,
        byz,
        window: window.ok_or("missing `window` line")?,
        max_rounds: max_rounds.ok_or("missing `max-rounds` line")?,
        faults,
        partition,
    };
    if schedule.proposals.len() != schedule.n {
        return Err(format!(
            "proposals has {} bits but n = {}",
            schedule.proposals.len(),
            schedule.n
        ));
    }
    if let Some(b) = schedule.byz.iter().find(|b| b.id >= schedule.n) {
        return Err(format!("byz id {} out of range for n = {}", b.id, schedule.n));
    }
    Ok((schedule, expect.ok_or("missing `expect` line")?))
}

fn one<'a>(rest: &[&'a str]) -> Result<&'a str, String> {
    match rest {
        [w] => Ok(w),
        _ => Err(format!("expected exactly one value, got {}", rest.len())),
    }
}

fn num<T: std::str::FromStr>(word: &str) -> Result<T, String> {
    word.parse().map_err(|_| format!("bad number `{word}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schedule {
        Schedule {
            engine: EngineKind::Turquois,
            n: 5,
            seed: 12345,
            proposals: vec![true, false, true, false, true],
            byz: vec![ByzSpec {
                id: 4,
                mask: 0b00011,
                strategy: ByzStrategy::SplitBrain,
            }],
            window: 4,
            max_rounds: 40,
            faults: vec![
                Fault { round: 1, from: 0, to: 3, kind: FaultKind::Drop },
                Fault { round: 2, from: 1, to: 3, kind: FaultKind::Delay(2) },
                Fault { round: 3, from: 0, to: 1, kind: FaultKind::Duplicate },
            ],
            partition: None,
        }
    }

    #[test]
    fn round_trips_byte_for_byte() {
        let text = to_text(&sample(), Expectation::Clean, &["a comment"]);
        let (parsed, expect) = parse(&text).unwrap();
        assert_eq!(parsed, sample());
        assert_eq!(expect, Expectation::Clean);
        // Canonical: re-rendering the parse (minus comments) is stable.
        let text2 = to_text(&parsed, expect, &[]);
        let (parsed2, _) = parse(&text2).unwrap();
        assert_eq!(parsed2, parsed);
        assert_eq!(to_text(&parsed2, expect, &[]), text2);
    }

    #[test]
    fn all_expectations_round_trip() {
        for e in [
            Expectation::Clean,
            Expectation::Violation("agreement"),
            Expectation::Violation("validity"),
            Expectation::Violation("liveness"),
        ] {
            let text = to_text(&sample(), e, &[]);
            assert_eq!(parse(&text).unwrap().1, e);
        }
    }

    #[test]
    fn partition_line_round_trips() {
        let mut s = sample();
        s.partition = Some(Partition {
            mask: 0b00111,
            split_round: 1,
            heal_round: 9,
        });
        let text = to_text(&s, Expectation::Clean, &[]);
        assert!(text.contains("partition 7 1 9\n"), "{text}");
        let (parsed, _) = parse(&text).unwrap();
        assert_eq!(parsed, s);
        assert_eq!(to_text(&parsed, Expectation::Clean, &[]), text);
    }

    #[test]
    fn rejects_malformed_fixtures() {
        assert!(parse("").is_err());
        assert!(parse("engine nope\n").is_err());
        let text = to_text(&sample(), Expectation::Clean, &[]);
        assert!(parse(&text.replace("expect clean", "expect sideways")).is_err());
        assert!(parse(&text.replace("n 5", "n 3")).is_err(), "proposal/n mismatch");
        assert!(parse(&(text.clone() + "wobble 3\n")).is_err(), "unknown key");
        assert!(
            parse(&(text.clone() + "partition 3 1\n")).is_err(),
            "partition arity"
        );
        assert!(
            parse(&(text + "partition 3 1 9\npartition 3 1 9\n")).is_err(),
            "duplicate partition"
        );
    }
}
