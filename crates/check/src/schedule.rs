//! The schedule model: a plain-data description of one adversarial
//! execution, plus the seeded generator that explores the space.
//!
//! A [`Schedule`] is everything needed to replay an execution
//! byte-for-byte: engine, group size, seeds, proposals, Byzantine
//! membership with per-receiver equivocation masks, and a list of
//! per-`(round, sender, receiver)` delivery [`Fault`]s active during the
//! adversarial `window`. Being plain data, schedules can be shrunk field
//! by field (see [`mod@crate::shrink`]) and serialized as replay fixtures
//! (see [`crate::replay`]).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use turquois_core::Config;

/// Which consensus engine a schedule drives.
#[derive(Clone, Copy, Debug, Eq, Ord, PartialEq, PartialOrd)]
pub enum EngineKind {
    /// The Turquois engine (`turquois-core`), omission-tolerant.
    Turquois,
    /// Bracha's protocol over reliable broadcast (`turquois-baselines`).
    Bracha,
    /// ABBA with threshold signatures (`turquois-baselines`).
    Abba,
}

impl EngineKind {
    /// Stable lowercase name used in reports and replay files.
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Turquois => "turquois",
            EngineKind::Bracha => "bracha",
            EngineKind::Abba => "abba",
        }
    }

    /// Parses [`EngineKind::name`] output.
    pub fn parse(s: &str) -> Option<EngineKind> {
        match s {
            "turquois" => Some(EngineKind::Turquois),
            "bracha" => Some(EngineKind::Bracha),
            "abba" => Some(EngineKind::Abba),
            _ => None,
        }
    }
}

/// What happens to one `(round, sender, receiver)` delivery edge.
#[derive(Clone, Copy, Debug, Eq, PartialEq)]
pub enum FaultKind {
    /// The message never arrives (a dynamic omission).
    Drop,
    /// Delivery is postponed by the given number of rounds (a reorder:
    /// the message arrives after younger traffic).
    Delay(u32),
    /// The message arrives twice, in consecutive rounds.
    Duplicate,
}

/// A first-class network split: a schedule *action* rather than a pile
/// of per-edge faults. Messages between correct processes on opposite
/// sides of the mask, sent in rounds `split_round..heal_round` (and
/// inside the adversarial window, like every fault), are cut — dropped
/// on Turquois' unreliable broadcasts, buffered until the heal by the
/// baselines' reliable links. Byzantine processes straddle the split (a
/// node at the partition boundary hears both sides — the strongest
/// equivocation position), so their edges are never cut.
#[derive(Clone, Copy, Debug, Eq, PartialEq)]
pub struct Partition {
    /// Side-A membership: bit `i` set puts process `i` on side A.
    pub mask: u64,
    /// First round (1-based, inclusive) in which the split is active.
    pub split_round: u32,
    /// First round in which the network is whole again (exclusive end;
    /// the heal is the action of *this* round).
    pub heal_round: u32,
}

impl Partition {
    /// Whether the split is active for messages sent in `round`.
    pub fn active(&self, round: u32) -> bool {
        (self.split_round..self.heal_round).contains(&round)
    }

    /// Whether a `from → to` delivery crosses the split boundary.
    pub fn crosses(&self, from: usize, to: usize) -> bool {
        (self.mask >> from & 1) != (self.mask >> to & 1)
    }
}

/// One injected delivery fault.
#[derive(Clone, Copy, Debug, Eq, PartialEq)]
pub struct Fault {
    /// The round the message was *sent* in (1-based).
    pub round: u32,
    /// Sending process.
    pub from: usize,
    /// Receiving process.
    pub to: usize,
    /// What happens to the delivery.
    pub kind: FaultKind,
}

/// How a Byzantine process misbehaves.
#[derive(Clone, Copy, Debug, Eq, PartialEq)]
pub enum ByzStrategy {
    /// Runs two honest trackers with opposite proposals and shows each
    /// receiver the tracker selected by its mask bit — the strongest
    /// equivocator (Turquois), or mask-selected value-flip / signed
    /// round-1 equivocation for the baselines.
    SplitBrain,
    /// The paper's §7.2 value-flipping lie, told identically to every
    /// receiver (Turquois only; for the baselines this equals
    /// [`ByzStrategy::SplitBrain`] with an all-ones mask).
    Flip,
}

impl ByzStrategy {
    /// Stable name used in replay files.
    pub fn name(self) -> &'static str {
        match self {
            ByzStrategy::SplitBrain => "split",
            ByzStrategy::Flip => "flip",
        }
    }

    /// Parses [`ByzStrategy::name`] output.
    pub fn parse(s: &str) -> Option<ByzStrategy> {
        match s {
            "split" => Some(ByzStrategy::SplitBrain),
            "flip" => Some(ByzStrategy::Flip),
            _ => None,
        }
    }
}

/// One Byzantine process in a schedule.
#[derive(Clone, Copy, Debug, Eq, PartialEq)]
pub struct ByzSpec {
    /// Process id.
    pub id: usize,
    /// Per-receiver equivocation mask: bit `r` set means receiver `r`
    /// is shown the "A side" (split-brain) or the lying bytes
    /// (baselines).
    pub mask: u64,
    /// Behaviour.
    pub strategy: ByzStrategy,
}

/// A complete, replayable adversarial execution description.
#[derive(Clone, Debug, Eq, PartialEq)]
pub struct Schedule {
    /// The engine under test.
    pub engine: EngineKind,
    /// Group size.
    pub n: usize,
    /// Seed for per-process RNGs (coins) and key setup.
    pub seed: u64,
    /// Proposal of each process (length `n`).
    pub proposals: Vec<bool>,
    /// Byzantine processes (ids strictly distinct).
    pub byz: Vec<ByzSpec>,
    /// Faults apply only to messages sent in rounds `1..=window`.
    pub window: u32,
    /// Hard stop: the execution runs at most this many rounds.
    pub max_rounds: u32,
    /// Injected delivery faults.
    pub faults: Vec<Fault>,
    /// Optional split/heal action (see [`Partition`]).
    pub partition: Option<Partition>,
}

impl Schedule {
    /// Number of actually-faulty processes `t`.
    pub fn t(&self) -> usize {
        self.byz.len()
    }

    /// Whether `id` is Byzantine in this schedule.
    pub fn is_byz(&self, id: usize) -> bool {
        self.byz.iter().any(|b| b.id == id)
    }

    /// The paper-evaluation configuration for this group size (Turquois
    /// semantics; the baselines use the same `f = ⌊(n−1)/3⌋`).
    ///
    /// # Panics
    ///
    /// Panics on `n = 0` (the generator never produces it).
    pub fn config(&self) -> Config {
        Config::evaluation(self.n).expect("generator produces valid n")
    }

    /// Whether the schedule stays within the paper's σ omission budget:
    /// in every round, the number of omissions of correct→correct
    /// transmissions (drops and delays — a delayed message is omitted in
    /// its own round) is at most `σ(t)` (§5). Only such schedules carry
    /// a liveness guarantee for Turquois. The reliable-link baselines
    /// are budget-eligible iff no correct→correct transmission is ever
    /// dropped outright.
    pub fn within_sigma_budget(&self) -> bool {
        // A split cuts every cross-side correct↔correct edge on every
        // round it is active — past any per-round omission budget — so
        // partitioned schedules never carry a liveness guarantee.
        // (Post-heal decision is still asserted, by the sweep-level
        // `decided == explored` check and the partition fixtures.)
        if self.partition.is_some() {
            return false;
        }
        let correct = |id: usize| !self.is_byz(id);
        match self.engine {
            EngineKind::Turquois => {
                let sigma = self.config().sigma(self.t());
                let mut per_round = std::collections::BTreeMap::new();
                for f in &self.faults {
                    if matches!(f.kind, FaultKind::Drop | FaultKind::Delay(_))
                        && correct(f.from)
                        && correct(f.to)
                    {
                        *per_round.entry(f.round).or_insert(0usize) += 1;
                    }
                }
                per_round.values().all(|&c| c <= sigma)
            }
            EngineKind::Bracha | EngineKind::Abba => !self.faults.iter().any(|f| {
                matches!(f.kind, FaultKind::Drop) && correct(f.from) && correct(f.to)
            }),
        }
    }
}

/// Parameters of one exploration batch; [`generate`] derives schedule
/// `index` deterministically from these.
#[derive(Clone, Copy, Debug)]
pub struct GenParams {
    /// Engine under test.
    pub engine: EngineKind,
    /// Group size.
    pub n: usize,
    /// Base seed of the batch; schedule `index` mixes it in.
    pub base_seed: u64,
}

/// Adversarial window length used by generated schedules.
const WINDOW: u32 = 12;
/// Fault-free recovery rounds appended after the window.
// 78 rather than 60: the heaviest targeted-omission schedules at n = 7
// (hundreds of in-window drops) take a few rounds past 72 to converge —
// sweep index 6099 of the 10k reference decides at round 75.
const RECOVERY: u32 = 78;

/// Deterministically generates schedule `index` of a batch.
///
/// Four variants rotate by index:
///
/// 0. **light** — per-round random drops/delays/duplicates kept within
///    the σ budget (liveness-eligible);
/// 1. **heavy** — i.i.d. per-edge faults at ~25% (safety-only for
///    Turquois; delays instead of drops for the reliable-link
///    baselines);
/// 2. **partition** — a first-class [`Partition`] action splits the
///    correct processes in two halves for the whole window (cross
///    traffic dropped for Turquois, buffered to the heal for the
///    reliable-link baselines) while every Byzantine process
///    equivocates along the same split — equivocation delivered to
///    exactly one quorum;
/// 3. **targeted** — all traffic towards a victim subset is dropped or
///    delayed (asymmetric omission).
pub fn generate(params: &GenParams, index: u64) -> Schedule {
    let mut rng = StdRng::seed_from_u64(
        params
            .base_seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(index.wrapping_mul(0xbf58_476d_1ce4_e5b9))
            .wrapping_add(7),
    );
    let n = params.n;
    let f = (n - 1) / 3;
    let variant = index % 4;

    // Byzantine membership: partitions always field the full f (that is
    // where equivocation bites); other variants draw 0..=f.
    let t = if variant == 2 {
        f
    } else {
        rng.gen_range(0..=f)
    };
    let mut ids: Vec<usize> = (0..n).collect();
    // Deterministic Fisher–Yates prefix.
    for i in 0..t {
        let j = rng.gen_range(i..n);
        ids.swap(i, j);
    }
    let mut byz_ids: Vec<usize> = ids[..t].to_vec();
    byz_ids.sort_unstable();

    let mut proposals: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.5)).collect();
    let correct: Vec<usize> = (0..n).filter(|id| !byz_ids.contains(id)).collect();

    let mut faults: Vec<Fault> = Vec::new();
    let mut partition: Option<Partition> = None;
    let mut masks: Vec<u64> = byz_ids.iter().map(|_| rng.gen::<u64>()).collect();
    let reliable = !matches!(params.engine, EngineKind::Turquois);
    let window = WINDOW;

    match variant {
        0 => {
            // Light: stay within σ per round (Turquois) / delays only
            // (baselines).
            let budget = match params.engine {
                EngineKind::Turquois => Config::evaluation(n)
                    .expect("valid n")
                    .sigma(t)
                    .min(2 * n),
                _ => n,
            };
            for round in 1..=window {
                let count = rng.gen_range(0..=budget);
                for _ in 0..count {
                    let from = correct[rng.gen_range(0..correct.len())];
                    let to = correct[rng.gen_range(0..correct.len())];
                    if from == to || has_fault(&faults, round, from, to) {
                        continue;
                    }
                    let kind = if reliable {
                        FaultKind::Delay(rng.gen_range(1..=3))
                    } else if rng.gen_bool(0.6) {
                        FaultKind::Drop
                    } else if rng.gen_bool(0.7) {
                        FaultKind::Delay(rng.gen_range(1..=3))
                    } else {
                        FaultKind::Duplicate
                    };
                    faults.push(Fault {
                        round,
                        from,
                        to,
                        kind,
                    });
                }
            }
        }
        1 => {
            // Heavy i.i.d. faults on every edge.
            for round in 1..=window {
                for &from in &correct {
                    for to in 0..n {
                        if from == to || !rng.gen_bool(0.25) {
                            continue;
                        }
                        let kind = if reliable || rng.gen_bool(0.4) {
                            FaultKind::Delay(rng.gen_range(1..=4))
                        } else if rng.gen_bool(0.8) {
                            FaultKind::Drop
                        } else {
                            FaultKind::Duplicate
                        };
                        faults.push(Fault {
                            round,
                            from,
                            to,
                            kind,
                        });
                    }
                }
            }
        }
        2 => {
            // Partition: side A = first half of the correct processes,
            // split for the whole window, healed at its end — as one
            // schedule action instead of O(window · |A| · |B|) faults.
            let split = correct.len().div_ceil(2);
            let mut mask = 0u64;
            for (i, &id) in correct.iter().enumerate() {
                proposals[id] = i >= split; // A proposes false, B true
                if i < split {
                    mask |= 1 << id;
                }
            }
            masks.fill(mask);
            partition = Some(Partition {
                mask,
                split_round: 1,
                heal_round: window + 1,
            });
        }
        _ => {
            // Targeted asymmetric omission against a victim subset.
            let victims = rng.gen_range(1..=correct.len().div_ceil(2));
            let victim_set: Vec<usize> = correct[..victims].to_vec();
            for round in 1..=window {
                for from in 0..n {
                    for &to in &victim_set {
                        if from == to {
                            continue;
                        }
                        let kind = if reliable {
                            FaultKind::Delay(window + 1 - round)
                        } else {
                            FaultKind::Drop
                        };
                        faults.push(Fault {
                            round,
                            from,
                            to,
                            kind,
                        });
                    }
                }
            }
        }
    }

    let byz = byz_ids
        .iter()
        .zip(masks)
        .map(|(&id, mask)| ByzSpec {
            id,
            mask,
            strategy: if variant != 2 && rng.gen_bool(0.3) {
                ByzStrategy::Flip
            } else {
                ByzStrategy::SplitBrain
            },
        })
        .collect();

    Schedule {
        engine: params.engine,
        n,
        seed: rng.gen::<u64>(),
        proposals,
        byz,
        window,
        max_rounds: window + RECOVERY,
        faults,
        partition,
    }
}

fn has_fault(faults: &[Fault], round: u32, from: usize, to: usize) -> bool {
    faults
        .iter()
        .any(|f| f.round == round && f.from == from && f.to == to)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let params = GenParams {
            engine: EngineKind::Turquois,
            n: 4,
            base_seed: 9,
        };
        for index in 0..16 {
            assert_eq!(generate(&params, index), generate(&params, index));
        }
        assert_ne!(generate(&params, 0), generate(&params, 1));
    }

    #[test]
    fn light_variant_is_sigma_eligible() {
        let params = GenParams {
            engine: EngineKind::Turquois,
            n: 7,
            base_seed: 3,
        };
        for index in (0..64).step_by(4) {
            let s = generate(&params, index);
            assert!(s.within_sigma_budget(), "light schedule {index} over budget");
        }
    }

    #[test]
    fn baseline_schedules_never_drop_correct_traffic() {
        for engine in [EngineKind::Bracha, EngineKind::Abba] {
            let params = GenParams {
                engine,
                n: 4,
                base_seed: 5,
            };
            for index in 0..32 {
                let s = generate(&params, index);
                assert!(
                    !s.faults.iter().any(|f| matches!(f.kind, FaultKind::Drop)
                        && !s.is_byz(f.from)
                        && !s.is_byz(f.to)),
                    "{} schedule {index} drops correct traffic",
                    engine.name()
                );
                // A partition buffers (never drops) baseline traffic but
                // still voids the liveness budget by fiat.
                assert_eq!(
                    s.within_sigma_budget(),
                    s.partition.is_none(),
                    "{} schedule {index}",
                    engine.name()
                );
            }
        }
    }

    #[test]
    fn partition_variant_is_a_schedule_action() {
        for engine in [EngineKind::Turquois, EngineKind::Bracha] {
            let params = GenParams {
                engine,
                n: 7,
                base_seed: 13,
            };
            for index in 0..32 {
                let s = generate(&params, index);
                if index % 4 != 2 {
                    assert_eq!(s.partition, None, "variant {} got a partition", index % 4);
                    continue;
                }
                let p = s.partition.expect("partition variant carries the action");
                assert!(s.faults.is_empty(), "partition is an action, not a fault pile");
                assert_eq!((p.split_round, p.heal_round), (1, s.window + 1));
                assert!(!s.within_sigma_budget(), "partitioned schedules are ineligible");
                // Every Byzantine mask equivocates along the split, and
                // both sides hold at least one correct process.
                for b in &s.byz {
                    assert_eq!(b.mask, p.mask, "byz mask tracks the partition split");
                }
                let correct: Vec<usize> = (0..s.n).filter(|&id| !s.is_byz(id)).collect();
                let side_a = correct.iter().filter(|&&id| p.mask >> id & 1 == 1).count();
                assert!(side_a > 0 && side_a < correct.len(), "both sides populated");
            }
        }
    }

    #[test]
    fn byz_ids_distinct_and_in_range() {
        let params = GenParams {
            engine: EngineKind::Turquois,
            n: 7,
            base_seed: 11,
        };
        for index in 0..64 {
            let s = generate(&params, index);
            let mut ids: Vec<usize> = s.byz.iter().map(|b| b.id).collect();
            assert!(ids.iter().all(|&id| id < 7));
            let before = ids.len();
            ids.dedup();
            assert_eq!(ids.len(), before, "duplicate byz id in schedule {index}");
            assert!(before <= 2, "more than f Byzantine at n=7");
        }
    }
}
