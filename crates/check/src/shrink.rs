//! Greedy minimisation of failing schedules.
//!
//! Once the explorer finds a violating schedule it is usually bloated:
//! hundreds of faults, several Byzantine processes, a long adversarial
//! window. The shrinker reduces it to a minimal counterexample by
//! repeatedly deleting parts and keeping any deletion that still
//! violates the property:
//!
//! 1. **Fault removal** (ddmin-lite): try deleting chunks of the fault
//!    list, halving the chunk size down to single faults, to a fixpoint.
//! 2. **Byzantine demotion**: try turning each Byzantine process back
//!    into a correct one.
//! 3. **Partition removal**: try running the schedule with its
//!    split/heal action deleted.
//! 4. **Window reduction**: try halving the adversarial window (which
//!    disables the faults — and the partition — beyond it), then
//!    trimming it to the last fault round.
//!
//! The whole pass is deterministic — same input, same checker, same
//! minimal schedule — so shrunk counterexamples can be checked into
//! `tests/fixtures/` and replayed byte-for-byte.

use crate::drive::Violation;
use crate::schedule::Schedule;

/// Result of shrinking one failing schedule.
#[derive(Clone, Debug)]
pub struct ShrinkResult {
    /// The minimal schedule (still failing).
    pub schedule: Schedule,
    /// The violation the minimal schedule produces.
    pub violation: Violation,
    /// Human-readable log of each accepted reduction step.
    pub trace: Vec<String>,
    /// Number of candidate schedules executed while shrinking.
    pub attempts: usize,
}

/// Shrinks `failing` to a locally-minimal schedule for which `check`
/// still reports a violation.
///
/// `check` runs the schedule and returns `Some(violation)` if the
/// property of interest is still violated (callers usually match on the
/// violation kind so shrinking cannot drift from, say, an agreement
/// break to an unrelated liveness stall).
///
/// # Panics
///
/// Panics if `check(failing)` returns `None` — shrinking a passing
/// schedule is a caller bug.
pub fn shrink(failing: &Schedule, check: impl Fn(&Schedule) -> Option<Violation>) -> ShrinkResult {
    let mut attempts = 1;
    let mut violation = check(failing).expect("shrink() requires a failing schedule");
    let mut best = failing.clone();
    let mut trace = vec![format!(
        "start: {} faults, {} byz, window {} ({})",
        best.faults.len(),
        best.byz.len(),
        best.window,
        violation
    )];

    // Phase 1: ddmin-lite over the fault list, to a fixpoint.
    loop {
        let before = best.faults.len();
        let mut chunk = (best.faults.len() / 2).max(1);
        loop {
            let mut start = 0;
            while start < best.faults.len() {
                let end = (start + chunk).min(best.faults.len());
                let mut candidate = best.clone();
                candidate.faults.drain(start..end);
                attempts += 1;
                if let Some(v) = check(&candidate) {
                    trace.push(format!(
                        "drop faults [{start}..{end}) -> {} remain",
                        candidate.faults.len()
                    ));
                    best = candidate;
                    violation = v;
                    // Re-test the same position: the list shifted left.
                } else {
                    start = end;
                }
            }
            if chunk == 1 {
                break;
            }
            chunk = (chunk / 2).max(1);
        }
        if best.faults.len() == before {
            break;
        }
    }

    // Phase 2: demote Byzantine processes to correct ones.
    let mut i = 0;
    while i < best.byz.len() {
        let mut candidate = best.clone();
        let removed = candidate.byz.remove(i);
        attempts += 1;
        if let Some(v) = check(&candidate) {
            trace.push(format!("demote byz p{} -> correct", removed.id));
            best = candidate;
            violation = v;
        } else {
            i += 1;
        }
    }

    // Phase 3: try healing the network entirely (drop the partition).
    if best.partition.is_some() {
        let mut candidate = best.clone();
        candidate.partition = None;
        attempts += 1;
        if let Some(v) = check(&candidate) {
            trace.push("drop partition".into());
            best = candidate;
            violation = v;
        }
    }

    // Phase 4: tighten the adversarial window.
    loop {
        let last_fault = best.faults.iter().map(|f| f.round).max().unwrap_or(0);
        let target = if best.window / 2 >= last_fault {
            best.window / 2
        } else {
            last_fault
        };
        if target >= best.window {
            break;
        }
        let mut candidate = best.clone();
        candidate.window = target;
        attempts += 1;
        match check(&candidate) {
            Some(v) => {
                trace.push(format!("shrink window -> {target}"));
                best = candidate;
                violation = v;
            }
            None => break,
        }
    }

    trace.push(format!(
        "minimal: {} faults, {} byz, window {} ({})",
        best.faults.len(),
        best.byz.len(),
        best.window,
        violation
    ));
    ShrinkResult {
        schedule: best,
        violation,
        trace,
        attempts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{ByzSpec, ByzStrategy, EngineKind, Fault, FaultKind, Partition};

    /// Synthetic checker: fails iff the schedule still contains the one
    /// load-bearing fault (round 3, 0 -> 1 drop) AND a Byzantine p2.
    fn synthetic_check(s: &Schedule) -> Option<Violation> {
        let has_fault = s.faults.iter().any(|f| {
            f.round == 3 && f.from == 0 && f.to == 1 && f.kind == FaultKind::Drop && f.round <= s.window
        });
        let has_byz = s.byz.iter().any(|b| b.id == 2);
        (has_fault && has_byz).then(|| Violation::Liveness {
            undecided: vec![1],
            detail: "synthetic".into(),
        })
    }

    fn bloated() -> Schedule {
        let mut faults = Vec::new();
        for round in 1..=8 {
            for from in 0..4 {
                for to in 0..4 {
                    if from != to {
                        faults.push(Fault {
                            round,
                            from,
                            to,
                            kind: if (from + to) % 2 == 1 {
                                FaultKind::Drop
                            } else {
                                FaultKind::Delay(2)
                            },
                        });
                    }
                }
            }
        }
        Schedule {
            engine: EngineKind::Turquois,
            n: 4,
            seed: 7,
            proposals: vec![true; 4],
            byz: vec![
                ByzSpec { id: 2, mask: 0b0011, strategy: ByzStrategy::SplitBrain },
                ByzSpec { id: 3, mask: 0, strategy: ByzStrategy::Flip },
            ],
            window: 8,
            max_rounds: 40,
            faults,
            partition: Some(Partition {
                mask: 0b0011,
                split_round: 1,
                heal_round: 9,
            }),
        }
    }

    #[test]
    fn shrinks_to_the_load_bearing_core() {
        let result = shrink(&bloated(), synthetic_check);
        assert_eq!(result.schedule.faults.len(), 1, "{:?}", result.schedule.faults);
        assert_eq!(result.schedule.faults[0].round, 3);
        assert_eq!(result.schedule.faults[0].from, 0);
        assert_eq!(result.schedule.faults[0].to, 1);
        assert_eq!(result.schedule.byz.len(), 1);
        assert_eq!(result.schedule.byz[0].id, 2);
        assert_eq!(result.schedule.window, 3);
        assert_eq!(result.schedule.partition, None, "idle partition not removed");
        assert!(synthetic_check(&result.schedule).is_some());
    }

    #[test]
    fn load_bearing_partition_survives_shrinking() {
        // Checker fails iff the partition is still present — everything
        // else must be stripped, the split/heal action must stay.
        let check = |s: &Schedule| {
            s.partition.map(|_| Violation::Liveness {
                undecided: vec![1],
                detail: "synthetic".into(),
            })
        };
        let result = shrink(&bloated(), check);
        assert!(result.schedule.faults.is_empty());
        assert!(result.schedule.byz.is_empty());
        assert_eq!(result.schedule.partition, bloated().partition);
    }

    #[test]
    fn shrinking_is_deterministic() {
        let a = shrink(&bloated(), synthetic_check);
        let b = shrink(&bloated(), synthetic_check);
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.attempts, b.attempts);
    }

    #[test]
    #[should_panic(expected = "requires a failing schedule")]
    fn refuses_passing_schedules() {
        let mut s = bloated();
        s.byz.clear();
        shrink(&s, synthetic_check);
    }
}
