//! Command-line entry point for ad-hoc schedule sweeps.
//!
//! ```text
//! cargo run --release -p turquois-check --bin explore -- \
//!     [engine=turquois|bracha|abba] [n=N] [schedules=N] [seed=N]
//! ```
//!
//! Defaults sweep 1000 schedules per engine at the paper's smallest
//! size (n = 4, plus n = 7 for Turquois). Thread count comes from
//! `TURQUOIS_THREADS` like every harness binary; output is
//! byte-identical at any setting.

use turquois_check::{explore, EngineKind, ExploreConfig};
use turquois_harness::runner::threads_from_env;

fn main() {
    let mut engines: Vec<(EngineKind, usize)> = vec![
        (EngineKind::Turquois, 4),
        (EngineKind::Turquois, 7),
        (EngineKind::Bracha, 4),
        (EngineKind::Abba, 4),
    ];
    let mut schedules = 1000usize;
    let mut base_seed = 20100628u64; // DSN 2010 opening day.

    for arg in std::env::args().skip(1) {
        let Some((key, value)) = arg.split_once('=') else {
            eprintln!("ignoring argument `{arg}` (expected key=value)");
            continue;
        };
        match key {
            "engine" => match EngineKind::parse(value) {
                Some(e) => engines.retain(|(k, _)| *k == e),
                None => {
                    eprintln!("unknown engine `{value}`");
                    std::process::exit(2);
                }
            },
            "n" => {
                let n: usize = value.parse().expect("n must be a number");
                engines = engines
                    .iter()
                    .map(|&(e, _)| (e, n))
                    .collect::<std::collections::BTreeSet<_>>()
                    .into_iter()
                    .collect();
            }
            "schedules" => schedules = value.parse().expect("schedules must be a number"),
            "seed" => base_seed = value.parse().expect("seed must be a number"),
            other => {
                eprintln!("unknown key `{other}`");
                std::process::exit(2);
            }
        }
    }

    let threads = threads_from_env();
    let mut failed = false;
    for (engine, n) in engines {
        let report = explore(
            ExploreConfig {
                engine,
                n,
                schedules,
                base_seed,
            },
            threads,
        );
        print!("{}", report.text);
        failed |= !report.violations.is_empty() || !report.panics.is_empty();
    }
    if failed {
        std::process::exit(1);
    }
}
