//! Seeded exploration: generate schedules, fan them across the harness
//! worker pool, shrink whatever fails, and render a deterministic
//! report.
//!
//! Exploration reuses `turquois_harness::runner::run_indexed` — the
//! same deterministic fan-out that drives the experiment binaries — so
//! per-schedule results are merged in job order and the rendered report
//! is byte-identical at any `TURQUOIS_THREADS`. Shrinking runs serially
//! after the merge (only failures shrink, and failures are the rare
//! path).

use crate::drive::{run_schedule, RunReport, Violation};
use crate::replay::{to_text, Expectation};
use crate::schedule::{generate, EngineKind, GenParams, Schedule};
use crate::shrink::shrink;
use std::fmt::Write as _;
use turquois_harness::runner::{run_supervised, JobOutcome, StallReport};

/// Parameters for one exploration sweep.
#[derive(Clone, Copy, Debug)]
pub struct ExploreConfig {
    /// Engine under test.
    pub engine: EngineKind,
    /// Group size.
    pub n: usize,
    /// Number of schedules to generate and run.
    pub schedules: usize,
    /// Base seed; schedule `i` derives its randomness from
    /// `(base_seed, i)`, so sweeps are reproducible and extendable.
    pub base_seed: u64,
}

/// A violating schedule together with its shrunk counterexample.
#[derive(Clone, Debug)]
pub struct ViolationRecord {
    /// Index of the generated schedule that failed.
    pub index: usize,
    /// The violation the original schedule produced.
    pub violation: Violation,
    /// The minimal schedule after shrinking (still failing).
    pub shrunk: Schedule,
    /// The violation the shrunk schedule produces.
    pub shrunk_violation: Violation,
    /// Replay fixture text for the shrunk schedule.
    pub fixture: String,
    /// The shrinker's step-by-step log.
    pub trace: Vec<String>,
    /// Schedules executed while shrinking.
    pub shrink_attempts: usize,
}

/// A schedule whose execution panicked the engine — a counterexample
/// candidate in its own right (an engine crash on adversarial input is
/// a bug even when no safety property gets the chance to trip).
#[derive(Clone, Debug)]
pub struct PanicRecord {
    /// Index of the generated schedule that panicked.
    pub index: usize,
    /// The panic message.
    pub message: String,
    /// Replay fixture text regenerating the panicking schedule.
    pub fixture: String,
}

/// Aggregate outcome of one exploration sweep.
#[derive(Clone, Debug)]
pub struct ExploreReport {
    /// Schedules executed.
    pub explored: usize,
    /// Schedules within the σ omission budget (liveness-checked).
    pub eligible: usize,
    /// Schedules on which every correct process decided.
    pub decided: usize,
    /// Failures, shrunk to minimal counterexamples.
    pub violations: Vec<ViolationRecord>,
    /// Schedules that panicked the engine, isolated by the supervised
    /// runner so the rest of the sweep still completes.
    pub panics: Vec<PanicRecord>,
    /// Deterministic rendered report (byte-identical at any thread
    /// count).
    pub text: String,
}

/// Runs one sweep: generate, execute in parallel, shrink failures,
/// render.
pub fn explore(cfg: ExploreConfig, threads: usize) -> ExploreReport {
    explore_with(cfg, threads, |_, s| run_schedule(s))
}

/// [`explore`] with an injectable per-schedule runner — the seam the
/// panic-isolation test uses to make a chosen schedule panic.
fn explore_with(
    cfg: ExploreConfig,
    threads: usize,
    run: impl Fn(usize, &Schedule) -> RunReport + Sync,
) -> ExploreReport {
    let params = GenParams {
        engine: cfg.engine,
        n: cfg.n,
        base_seed: cfg.base_seed,
    };
    let indices: Vec<usize> = (0..cfg.schedules).collect();
    // Supervised fan-out: a schedule that panics the engine is isolated
    // to its own job and recorded as a counterexample candidate instead
    // of killing the sweep.
    let outcomes = run_supervised(threads, &indices, |_, &i, _attempt| {
        let s = generate(&params, i as u64);
        let r = run(i, &s);
        Ok::<_, Box<StallReport>>((s, r))
    });

    let explored = outcomes.len();
    let mut runs: Vec<(usize, Schedule, RunReport)> = Vec::new();
    let mut panics: Vec<PanicRecord> = Vec::new();
    for (i, outcome) in outcomes.into_iter().enumerate() {
        match outcome {
            JobOutcome::Ok((s, r)) => runs.push((i, s, r)),
            // Schedule execution is a bounded loop with no time budget;
            // the job closure never reports a stall.
            JobOutcome::Stalled(_) => unreachable!("schedule execution cannot stall"),
            JobOutcome::Panicked(message) => {
                let s = generate(&params, i as u64);
                let fixture = to_text(
                    &s,
                    Expectation::Clean,
                    &[
                        &format!("schedule #{i} PANICKED during exploration: {message}"),
                        &format!(
                            "sweep: engine={}, n={}, base_seed={}",
                            cfg.engine.name(),
                            cfg.n,
                            cfg.base_seed
                        ),
                    ],
                );
                panics.push(PanicRecord {
                    index: i,
                    message,
                    fixture,
                });
            }
        }
    }

    let eligible = runs.iter().filter(|(_, _, r)| r.eligible).count();
    let decided = runs
        .iter()
        .filter(|(_, s, r)| {
            (0..s.n).filter(|&id| !s.is_byz(id)).all(|id| r.decisions[id].is_some())
        })
        .count();

    let mut violations = Vec::new();
    for (i, s, r) in runs.iter().map(|(i, s, r)| (*i, s, r)) {
        let Some(v) = &r.violation else { continue };
        // Shrink against the same violation *kind* so the minimal
        // schedule demonstrates the original failure, not an easier one
        // introduced along the way.
        let kind = v.kind();
        let result = shrink(s, |candidate| {
            run_schedule(candidate)
                .violation
                .filter(|cv| cv.kind() == kind)
        });
        let fixture = to_text(
            &result.schedule,
            Expectation::Violation(kind_static(kind)),
            &[&format!(
                "shrunk from schedule #{i} of sweep (engine={}, n={}, base_seed={})",
                cfg.engine.name(),
                cfg.n,
                cfg.base_seed
            )],
        );
        violations.push(ViolationRecord {
            index: i,
            violation: v.clone(),
            shrunk: result.schedule,
            shrunk_violation: result.violation,
            fixture,
            trace: result.trace,
            shrink_attempts: result.attempts,
        });
    }

    let mut text = String::new();
    let _ = writeln!(
        text,
        "schedule sweep: engine={} n={} schedules={} base_seed={}",
        cfg.engine.name(),
        cfg.n,
        cfg.schedules,
        cfg.base_seed
    );
    let _ = writeln!(
        text,
        "explored={explored} eligible={eligible} decided={decided} violations={} panics={}",
        violations.len(),
        panics.len()
    );
    for p in &panics {
        let _ = writeln!(text, "-- panic at schedule #{}: {}", p.index, p.message);
        for line in p.fixture.lines() {
            let _ = writeln!(text, "   > {line}");
        }
    }
    for v in &violations {
        let _ = writeln!(text, "-- violation at schedule #{}: {}", v.index, v.violation);
        let _ = writeln!(
            text,
            "   shrunk ({} attempts) to: {}",
            v.shrink_attempts, v.shrunk_violation
        );
        for line in &v.trace {
            let _ = writeln!(text, "   | {line}");
        }
        for line in v.fixture.lines() {
            let _ = writeln!(text, "   > {line}");
        }
    }

    ExploreReport {
        explored,
        eligible,
        decided,
        violations,
        panics,
        text,
    }
}

/// Maps a violation kind back to the `'static` string the
/// [`Expectation`] type carries.
fn kind_static(kind: &str) -> &'static str {
    match kind {
        "agreement" => "agreement",
        "validity" => "validity",
        "liveness" => "liveness",
        other => unreachable!("unknown violation kind {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panicking_schedule_is_a_candidate_not_a_sweep_killer() {
        let cfg = ExploreConfig {
            engine: EngineKind::Turquois,
            n: 4,
            schedules: 12,
            base_seed: 7,
        };
        let clean = explore(cfg, 2);

        // Quiet the default panic hook while panics are intentional.
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let mut reports = Vec::new();
        for threads in [1, 4] {
            reports.push(explore_with(cfg, threads, |i, s| {
                if i == 3 {
                    panic!("engine blew up on schedule {i}");
                }
                run_schedule(s)
            }));
        }
        std::panic::set_hook(hook);

        assert_eq!(reports[0].text, reports[1].text, "byte-identical with a panic");
        for report in &reports {
            assert_eq!(report.explored, 12, "sweep completes despite the panic");
            assert_eq!(report.panics.len(), 1);
            assert_eq!(report.panics[0].index, 3);
            assert!(report.panics[0].message.contains("blew up"));
            assert!(report.panics[0].fixture.contains("PANICKED"));
            assert!(report.text.contains("panics=1"));
            assert!(report.text.contains("-- panic at schedule #3"));
            // Every other schedule's verdict is unaffected.
            assert_eq!(report.violations.len(), clean.violations.len());
            assert!(report.decided + 1 >= clean.decided);
        }
    }

    #[test]
    fn report_is_byte_identical_across_thread_counts() {
        for engine in [EngineKind::Turquois, EngineKind::Bracha, EngineKind::Abba] {
            let cfg = ExploreConfig {
                engine,
                n: 4,
                schedules: 24,
                base_seed: 99,
            };
            let serial = explore(cfg, 1);
            let parallel = explore(cfg, 8);
            assert_eq!(serial.text, parallel.text, "{}", engine.name());
            assert_eq!(serial.explored, 24);
        }
    }
}
