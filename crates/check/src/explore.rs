//! Seeded exploration: generate schedules, fan them across the harness
//! worker pool, shrink whatever fails, and render a deterministic
//! report.
//!
//! Exploration reuses `turquois_harness::runner::run_indexed` — the
//! same deterministic fan-out that drives the experiment binaries — so
//! per-schedule results are merged in job order and the rendered report
//! is byte-identical at any `TURQUOIS_THREADS`. Shrinking runs serially
//! after the merge (only failures shrink, and failures are the rare
//! path).

use crate::drive::{run_schedule, RunReport, Violation};
use crate::replay::{to_text, Expectation};
use crate::schedule::{generate, EngineKind, GenParams, Schedule};
use crate::shrink::shrink;
use std::fmt::Write as _;
use turquois_harness::runner::run_indexed;

/// Parameters for one exploration sweep.
#[derive(Clone, Copy, Debug)]
pub struct ExploreConfig {
    /// Engine under test.
    pub engine: EngineKind,
    /// Group size.
    pub n: usize,
    /// Number of schedules to generate and run.
    pub schedules: usize,
    /// Base seed; schedule `i` derives its randomness from
    /// `(base_seed, i)`, so sweeps are reproducible and extendable.
    pub base_seed: u64,
}

/// A violating schedule together with its shrunk counterexample.
#[derive(Clone, Debug)]
pub struct ViolationRecord {
    /// Index of the generated schedule that failed.
    pub index: usize,
    /// The violation the original schedule produced.
    pub violation: Violation,
    /// The minimal schedule after shrinking (still failing).
    pub shrunk: Schedule,
    /// The violation the shrunk schedule produces.
    pub shrunk_violation: Violation,
    /// Replay fixture text for the shrunk schedule.
    pub fixture: String,
    /// The shrinker's step-by-step log.
    pub trace: Vec<String>,
    /// Schedules executed while shrinking.
    pub shrink_attempts: usize,
}

/// Aggregate outcome of one exploration sweep.
#[derive(Clone, Debug)]
pub struct ExploreReport {
    /// Schedules executed.
    pub explored: usize,
    /// Schedules within the σ omission budget (liveness-checked).
    pub eligible: usize,
    /// Schedules on which every correct process decided.
    pub decided: usize,
    /// Failures, shrunk to minimal counterexamples.
    pub violations: Vec<ViolationRecord>,
    /// Deterministic rendered report (byte-identical at any thread
    /// count).
    pub text: String,
}

/// Runs one sweep: generate, execute in parallel, shrink failures,
/// render.
pub fn explore(cfg: ExploreConfig, threads: usize) -> ExploreReport {
    let params = GenParams {
        engine: cfg.engine,
        n: cfg.n,
        base_seed: cfg.base_seed,
    };
    let indices: Vec<usize> = (0..cfg.schedules).collect();
    let runs: Vec<(Schedule, RunReport)> = run_indexed(threads, &indices, |_, &i| {
        let s = generate(&params, i as u64);
        let r = run_schedule(&s);
        (s, r)
    });

    let explored = runs.len();
    let eligible = runs.iter().filter(|(_, r)| r.eligible).count();
    let decided = runs
        .iter()
        .filter(|(s, r)| {
            (0..s.n).filter(|&id| !s.is_byz(id)).all(|id| r.decisions[id].is_some())
        })
        .count();

    let mut violations = Vec::new();
    for (i, (s, r)) in runs.iter().enumerate() {
        let Some(v) = &r.violation else { continue };
        // Shrink against the same violation *kind* so the minimal
        // schedule demonstrates the original failure, not an easier one
        // introduced along the way.
        let kind = v.kind();
        let result = shrink(s, |candidate| {
            run_schedule(candidate)
                .violation
                .filter(|cv| cv.kind() == kind)
        });
        let fixture = to_text(
            &result.schedule,
            Expectation::Violation(kind_static(kind)),
            &[&format!(
                "shrunk from schedule #{i} of sweep (engine={}, n={}, base_seed={})",
                cfg.engine.name(),
                cfg.n,
                cfg.base_seed
            )],
        );
        violations.push(ViolationRecord {
            index: i,
            violation: v.clone(),
            shrunk: result.schedule,
            shrunk_violation: result.violation,
            fixture,
            trace: result.trace,
            shrink_attempts: result.attempts,
        });
    }

    let mut text = String::new();
    let _ = writeln!(
        text,
        "schedule sweep: engine={} n={} schedules={} base_seed={}",
        cfg.engine.name(),
        cfg.n,
        cfg.schedules,
        cfg.base_seed
    );
    let _ = writeln!(
        text,
        "explored={explored} eligible={eligible} decided={decided} violations={}",
        violations.len()
    );
    for v in &violations {
        let _ = writeln!(text, "-- violation at schedule #{}: {}", v.index, v.violation);
        let _ = writeln!(
            text,
            "   shrunk ({} attempts) to: {}",
            v.shrink_attempts, v.shrunk_violation
        );
        for line in &v.trace {
            let _ = writeln!(text, "   | {line}");
        }
        for line in v.fixture.lines() {
            let _ = writeln!(text, "   > {line}");
        }
    }

    ExploreReport {
        explored,
        eligible,
        decided,
        violations,
        text,
    }
}

/// Maps a violation kind back to the `'static` string the
/// [`Expectation`] type carries.
fn kind_static(kind: &str) -> &'static str {
    match kind {
        "agreement" => "agreement",
        "validity" => "validity",
        "liveness" => "liveness",
        other => unreachable!("unknown violation kind {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_is_byte_identical_across_thread_counts() {
        for engine in [EngineKind::Turquois, EngineKind::Bracha, EngineKind::Abba] {
            let cfg = ExploreConfig {
                engine,
                n: 4,
                schedules: 24,
                base_seed: 99,
            };
            let serial = explore(cfg, 1);
            let parallel = explore(cfg, 8);
            assert_eq!(serial.text, parallel.text, "{}", engine.name());
            assert_eq!(serial.explored, 24);
        }
    }
}
