//! Executes a [`Schedule`] against the real engines — no simulator, no
//! airtime — and checks agreement, validity, and (budget-permitting)
//! eventual decision.
//!
//! Time is a sequence of *rounds* (delivery slots). Each round the
//! tick-driven Turquois engine broadcasts once per process and the
//! broadcast lands two rounds later — the two-tick latency matters:
//! with instant delivery every tick would broadcast a *new* state
//! (phases advance once per quorum) and the engine would never emit
//! the justified rebroadcasts that let a process stranded at a low
//! phase re-validate high-phase messages and catch up. The
//! message-driven baselines receive the round's deliveries and their
//! responses land the next round. Faults from the schedule apply to
//! messages *sent* during the adversarial window: drops, delays
//! (reorders — the message lands after younger traffic), and
//! duplicates. After the window the network is fault-free, which is
//! what makes eventual decision checkable.
//!
//! Byzantine processes are driven through the same strategies the
//! simulator uses (`turquois_harness::adversary`), plus the split-brain
//! equivocator: two honest trackers with opposite proposals, each
//! receiver shown the tracker its mask bit selects.

use crate::schedule::{ByzStrategy, EngineKind, FaultKind, Partition, Schedule};
use bytes::Bytes;
use std::collections::BTreeMap;
use std::fmt;
use turquois_baselines::abba::{round1_prevote, Abba, AbbaKeys};
use turquois_baselines::bracha::Bracha;
use turquois_core::instance::Turquois;
use turquois_core::message::Status;
use turquois_core::KeyRing;
use turquois_harness::adapters::FrameMutation;
use turquois_harness::adversary::{abba_garbage_votes, bracha_flip_mutation, turquois_lie};

/// A property violated by an execution (most severe first).
#[derive(Clone, Debug, Eq, PartialEq)]
pub enum Violation {
    /// Two correct processes decided different values.
    Agreement {
        /// First process and its decision.
        a: (usize, bool),
        /// Second process and its conflicting decision.
        b: (usize, bool),
    },
    /// All correct processes proposed `proposal`, yet one decided
    /// otherwise.
    Validity {
        /// The unanimous correct proposal.
        proposal: bool,
        /// The deviating process.
        id: usize,
    },
    /// The schedule guaranteed progress, but some correct process never
    /// decided.
    Liveness {
        /// Undecided correct processes.
        undecided: Vec<usize>,
        /// Engine-state snapshot of the undecided processes.
        detail: String,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Agreement { a, b } => write!(
                f,
                "agreement: p{} decided {} but p{} decided {}",
                a.0, a.1 as u8, b.0, b.1 as u8
            ),
            Violation::Validity { proposal, id } => write!(
                f,
                "validity: unanimous proposal {} but p{id} decided {}",
                *proposal as u8,
                !*proposal as u8
            ),
            Violation::Liveness { undecided, detail } => {
                write!(f, "liveness: undecided {undecided:?} ({detail})")
            }
        }
    }
}

/// The stable kind tag of a violation (used by replay expectations).
impl Violation {
    /// `agreement`, `validity`, or `liveness`.
    pub fn kind(&self) -> &'static str {
        match self {
            Violation::Agreement { .. } => "agreement",
            Violation::Validity { .. } => "validity",
            Violation::Liveness { .. } => "liveness",
        }
    }
}

/// Outcome of one schedule execution.
#[derive(Clone, Debug, Eq, PartialEq)]
pub struct RunReport {
    /// Decision of each process (`None` for Byzantine slots and
    /// undecided processes).
    pub decisions: Vec<Option<bool>>,
    /// Rounds actually executed.
    pub rounds_used: u32,
    /// Messages delivered.
    pub delivered: u64,
    /// Messages dropped by injected faults.
    pub dropped: u64,
    /// Whether the schedule stayed within the σ omission budget.
    pub eligible: bool,
    /// The first property violation, if any.
    pub violation: Option<Violation>,
}

/// Routing hint for a delivery: which half of a split-brain Byzantine
/// receiver should process it. `MaskBit` (the normal case) routes by
/// the receiver's mask bit of the sender; `SideA`/`SideB` force a
/// tracker and exist for the equivocator's own loopbacks, where both
/// trackers must hear their own broadcast (a Byzantine node trivially
/// knows everything it transmitted).
#[derive(Clone, Copy, Debug, Eq, PartialEq)]
enum Side {
    MaskBit,
    SideA,
    SideB,
}

/// One queued delivery: `(seq, from, to, side, bytes)`.
type Delivery = (u64, usize, usize, Side, Bytes);

/// In-flight messages with fault and partition application at send
/// time.
struct Net {
    queue: BTreeMap<u32, Vec<Delivery>>,
    faults: BTreeMap<(u32, usize, usize), FaultKind>,
    window: u32,
    /// The schedule's split/heal action, if any (window-gated like the
    /// faults).
    partition: Option<Partition>,
    /// Bit `i` set means process `i` is correct — the partition never
    /// cuts a Byzantine endpoint (the equivocator straddles the split).
    correct_mask: u64,
    /// Reliable-link engines (the baselines) buffer cross-split traffic
    /// until the heal instead of dropping it.
    reliable: bool,
    seq: u64,
    jitter: u64,
    delivered: u64,
    dropped: u64,
}

/// SplitMix64 finalizer — the per-round arrival-jitter hash.
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

impl Net {
    fn new(s: &Schedule) -> Net {
        let mut faults = BTreeMap::new();
        for f in &s.faults {
            faults.entry((f.round, f.from, f.to)).or_insert(f.kind);
        }
        let mut correct_mask = 0u64;
        for id in 0..s.n {
            if !s.is_byz(id) {
                correct_mask |= 1 << id;
            }
        }
        Net {
            queue: BTreeMap::new(),
            faults,
            window: s.window,
            partition: s.partition,
            correct_mask,
            reliable: !matches!(s.engine, EngineKind::Turquois),
            seq: 0,
            jitter: mix64(s.seed ^ 0x6a09e667f3bcc908),
            delivered: 0,
            dropped: 0,
        }
    }

    fn push(&mut self, due: u32, from: usize, to: usize, side: Side, bytes: Bytes) {
        let seq = self.seq;
        self.seq += 1;
        self.queue
            .entry(due)
            .or_default()
            .push((seq, from, to, side, bytes));
    }

    /// Sends one message emitted in `round` with natural delivery round
    /// `base_due`, applying the schedule's fault for this edge (if the
    /// round is inside the adversarial window).
    fn send(&mut self, round: u32, base_due: u32, from: usize, to: usize, bytes: Bytes) {
        self.send_side(round, base_due, from, to, Side::MaskBit, bytes);
    }

    fn send_side(
        &mut self,
        round: u32,
        base_due: u32,
        from: usize,
        to: usize,
        side: Side,
        bytes: Bytes,
    ) {
        let kind = if round <= self.window {
            self.faults.get(&(round, from, to)).copied()
        } else {
            None
        };
        // The split cuts correct↔correct edges crossing the mask while
        // active (and inside the window, like every fault): Turquois'
        // broadcasts are lost outright; the baselines' reliable links
        // buffer the bytes and release them at the heal.
        let cut = round <= self.window
            && self.partition.is_some_and(|p| {
                p.active(round)
                    && p.crosses(from, to)
                    && self.correct_mask >> from & 1 == 1
                    && self.correct_mask >> to & 1 == 1
            });
        if cut && !self.reliable {
            self.dropped += 1;
            return;
        }
        let floor = if cut {
            self.partition.expect("cut implies a partition").heal_round
        } else {
            0
        };
        match kind {
            None => self.push(base_due.max(floor), from, to, side, bytes),
            Some(FaultKind::Drop) => self.dropped += 1,
            Some(FaultKind::Delay(by)) => {
                self.push((base_due + by).max(floor), from, to, side, bytes)
            }
            Some(FaultKind::Duplicate) => {
                self.push(base_due.max(floor), from, to, side, bytes.clone());
                self.push((base_due + 1).max(floor), from, to, side, bytes);
            }
        }
    }

    /// Removes and returns every delivery due at or before `round`, in
    /// seeded pseudo-random arrival order.
    ///
    /// The order is a pure function of `(schedule seed, round, send
    /// seq)` — deterministic and thread-count-independent — but NOT
    /// send order: with a fixed sender-id order every quorum snapshot
    /// contains the same low-id senders, and a Byzantine process with a
    /// low id then sits inside *every* first quorum of every phase,
    /// livelocking the lock step indefinitely. Broadcast arrival jitter
    /// (which the simulator gets from airtime) is what breaks that
    /// symmetry in practice, so the driver reproduces it here. The
    /// order is global, not per-receiver: on a broadcast medium every
    /// receiver hears the same frame at the same instant.
    fn take(&mut self, round: u32) -> Vec<(u64, usize, usize, Side, Bytes)> {
        let later = self.queue.split_off(&(round + 1));
        let mut due: Vec<(u64, usize, usize, Side, Bytes)> =
            std::mem::replace(&mut self.queue, later)
                .into_values()
                .flatten()
                .collect();
        let jitter = self.jitter;
        due.sort_by_key(|(seq, _, _, _, _)| (mix64(jitter ^ (u64::from(round) << 32) ^ *seq), *seq));
        self.delivered += due.len() as u64;
        due
    }

    fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }
}

/// Runs one schedule to completion and checks its properties.
///
/// # Panics
///
/// Panics on malformed schedules (e.g. `proposals.len() != n` or a
/// Byzantine id out of range) — the generator and the replay parser
/// both uphold these, so a panic here means a driver bug, and the
/// explorer wants it loud.
pub fn run_schedule(s: &Schedule) -> RunReport {
    assert_eq!(s.proposals.len(), s.n, "proposals must cover every process");
    assert!(s.byz.iter().all(|b| b.id < s.n), "byz id out of range");
    match s.engine {
        EngineKind::Turquois => run_turquois(s),
        EngineKind::Bracha => run_bracha(s),
        EngineKind::Abba => run_abba(s),
    }
}

// ---- Turquois --------------------------------------------------------

#[allow(clippy::large_enum_variant)] // n processes total; boxing buys nothing
enum TProc {
    Correct(Turquois),
    /// The split-brain equivocator: tracker `a` serves receivers whose
    /// mask bit is set (proposing 0), tracker `b` the rest (proposing 1).
    Split {
        a: Turquois,
        b: Turquois,
        mask: u64,
    },
    /// The §7.2 value-flipping liar around an honest tracker.
    Flip { tracker: Turquois, ring: KeyRing },
}

fn run_turquois(s: &Schedule) -> RunReport {
    let cfg = s.config();
    let phases = (s.max_rounds + 8) as usize;
    let rings = KeyRing::trusted_setup(s.n, phases, s.seed);
    let mut procs: Vec<TProc> = rings
        .into_iter()
        .enumerate()
        .map(|(id, ring)| {
            let seed = s.seed.wrapping_add(31 * id as u64);
            match s.byz.iter().find(|b| b.id == id) {
                None => TProc::Correct(Turquois::new(cfg, id, s.proposals[id], ring, seed)),
                Some(b) => match b.strategy {
                    ByzStrategy::SplitBrain => TProc::Split {
                        a: Turquois::new(cfg, id, false, ring.clone(), seed),
                        b: Turquois::new(cfg, id, true, ring, seed ^ 0xa5a5),
                        mask: b.mask,
                    },
                    ByzStrategy::Flip => TProc::Flip {
                        tracker: Turquois::new(cfg, id, s.proposals[id], ring.clone(), seed),
                        ring,
                    },
                },
            }
        })
        .collect();

    // The Byzantine coalition colludes: a split-brain equivocator sends
    // *both* side outputs to fellow equivocators (side-tagged, like its
    // self-delivery) so each of their trackers keeps pace with its
    // partition side. With one mask-routed copy a coalition of t ≥ 2
    // starves its own trackers below quorum and the whole equivocation
    // stalls at phase 1 — a weaker adversary than the paper allows.
    let split_ids: Vec<bool> = (0..s.n)
        .map(|id| {
            s.byz
                .iter()
                .any(|b| b.id == id && b.strategy == ByzStrategy::SplitBrain)
        })
        .collect();

    let mut net = Net::new(s);
    let mut rounds_used = s.max_rounds;
    for round in 1..=s.max_rounds {
        // Broadcasts (task T1), in process order.
        for (id, proc) in procs.iter_mut().enumerate() {
            match proc {
                TProc::Correct(p) => {
                    let out = p.on_tick().expect("keys sized for max_rounds");
                    for to in 0..s.n {
                        net.send(round, round + 2, id, to, out.bytes.clone());
                    }
                }
                TProc::Split { a, b, mask } => {
                    let out_a = a.on_tick().expect("keys sized for max_rounds");
                    let out_b = b.on_tick().expect("keys sized for max_rounds");
                    let mask = *mask;
                    for (to, &to_is_split) in split_ids.iter().enumerate() {
                        if to == id || to_is_split {
                            // Both trackers hear their own broadcast, and
                            // the coalition shares both brains.
                            net.send_side(round, round + 2, id, to, Side::SideA, out_a.bytes.clone());
                            net.send_side(round, round + 2, id, to, Side::SideB, out_b.bytes.clone());
                            continue;
                        }
                        let bytes = if mask >> to & 1 == 1 {
                            out_a.bytes.clone()
                        } else {
                            out_b.bytes.clone()
                        };
                        net.send(round, round + 2, id, to, bytes);
                    }
                }
                TProc::Flip { tracker, ring } => {
                    if let Some(lie) = turquois_lie(tracker.phase(), tracker.value(), id, ring) {
                        let bytes = lie.encode();
                        for to in 0..s.n {
                            net.send(round, round + 2, id, to, bytes.clone());
                        }
                    }
                }
            }
        }
        // Deliveries (task T2), in send order.
        for (_, from, to, side, bytes) in net.take(round) {
            match &mut procs[to] {
                TProc::Correct(p) => {
                    p.on_message(&bytes);
                }
                TProc::Split { a, b, mask } => {
                    // Self-deliveries carry a side tag (each tracker
                    // hears its own broadcast); everything else routes
                    // by the receiver's mask bit of the sender, so each
                    // tracker only ever hears its side of the brain.
                    match side {
                        Side::SideA => a.on_message(&bytes),
                        Side::SideB => b.on_message(&bytes),
                        Side::MaskBit => {
                            if *mask >> from & 1 == 1 {
                                a.on_message(&bytes)
                            } else {
                                b.on_message(&bytes)
                            }
                        }
                    };
                }
                TProc::Flip { tracker, .. } => {
                    tracker.on_message(&bytes);
                }
            }
        }
        if correct_turquois(&procs).all(|(_, p)| p.decision().is_some()) {
            rounds_used = round;
            break;
        }
    }

    let decisions: Vec<Option<bool>> = procs
        .iter()
        .map(|p| match p {
            TProc::Correct(p) => p.decision(),
            _ => None,
        })
        .collect();
    // Engine-consistency invariant: a Decided broadcast status always
    // comes with the write-once decision set. (The converse does not
    // hold — Rule 1 catch-up copies the sender's status, so a decided
    // process chasing an undecided sender's higher phase legitimately
    // reverts its *broadcast* status while keeping its decision.)
    for (id, p) in correct_turquois(&procs) {
        if p.status() == Status::Decided {
            assert!(p.decision().is_some(), "p{id} has Decided status but no decision");
        }
    }
    let detail = |undecided: &[usize]| {
        undecided
            .iter()
            .map(|&id| {
                let TProc::Correct(p) = &procs[id] else {
                    unreachable!("undecided list holds correct ids")
                };
                let phase = p.phase();
                format!(
                    "p{id} phase={phase} valid@{phase}={} evid@{phase}={}",
                    p.valid_senders_at(phase),
                    p.evidence_senders_at(phase)
                )
            })
            .collect::<Vec<_>>()
            .join(", ")
    };
    finish(s, decisions, rounds_used, net, s.within_sigma_budget(), &[], detail)
}

fn correct_turquois(procs: &[TProc]) -> impl Iterator<Item = (usize, &Turquois)> {
    procs.iter().enumerate().filter_map(|(id, p)| match p {
        TProc::Correct(p) => Some((id, p)),
        _ => None,
    })
}

// ---- Bracha ----------------------------------------------------------

enum BProc {
    Correct(Bracha),
    /// An honest engine whose outgoing frames pass through the §7.2
    /// value-flip mutation for receivers whose mask bit is set:
    /// mask = all-ones is the classic flip adversary, a partial mask is
    /// initial-value equivocation under reliable broadcast.
    Byz {
        engine: Bracha,
        mask: u64,
        mutate: FrameMutation,
    },
}

fn run_bracha(s: &Schedule) -> RunReport {
    let f = (s.n - 1) / 3;
    let mut procs: Vec<BProc> = (0..s.n)
        .map(|id| {
            let engine = Bracha::new(
                s.n,
                f,
                id,
                s.proposals[id],
                s.seed.wrapping_add(31 * id as u64),
            );
            match s.byz.iter().find(|b| b.id == id) {
                None => BProc::Correct(engine),
                Some(b) => BProc::Byz {
                    engine,
                    mask: match b.strategy {
                        ByzStrategy::SplitBrain => b.mask,
                        ByzStrategy::Flip => u64::MAX,
                    },
                    mutate: bracha_flip_mutation(id),
                },
            }
        })
        .collect();

    let mut net = Net::new(s);
    let mut rounds_used = s.max_rounds;
    let mut stalled = false;
    for round in 1..=s.max_rounds {
        if round == 1 {
            for id in 0..s.n {
                let send = match &mut procs[id] {
                    BProc::Correct(e) => e.on_start().send,
                    BProc::Byz { engine, .. } => engine.on_start().send,
                };
                emit_bracha(&mut procs, &mut net, round, id, send, s.n);
            }
        }
        for (_, from, to, _, bytes) in net.take(round) {
            let send = match &mut procs[to] {
                BProc::Correct(e) => e.on_message(from, &bytes).send,
                BProc::Byz { engine, .. } => engine.on_message(from, &bytes).send,
            };
            emit_bracha(&mut procs, &mut net, round, to, send, s.n);
        }
        if correct_bracha(&procs).all(|(_, e)| e.decision().is_some()) {
            rounds_used = round;
            break;
        }
        if net.is_empty() {
            // Purely reactive engines on an empty network: nothing will
            // ever change again.
            rounds_used = round;
            stalled = true;
            break;
        }
    }

    let decisions: Vec<Option<bool>> = procs
        .iter()
        .map(|p| match p {
            BProc::Correct(e) => e.decision(),
            _ => None,
        })
        .collect();
    let detail = |undecided: &[usize]| {
        let _ = stalled;
        undecided
            .iter()
            .map(|&id| {
                let BProc::Correct(e) = &procs[id] else {
                    unreachable!("undecided list holds correct ids")
                };
                format!(
                    "p{id} round={} step={} deliveries={}{}",
                    e.round(),
                    e.step(),
                    e.deliveries(),
                    if stalled { " [stalled]" } else { "" }
                )
            })
            .collect::<Vec<_>>()
            .join(", ")
    };
    finish(s, decisions, rounds_used, net, s.within_sigma_budget(), &[], detail)
}

/// Fans one process's outgoing frames to every receiver, applying the
/// Byzantine per-receiver mutation where the sender's mask selects it.
fn emit_bracha(
    procs: &mut [BProc],
    net: &mut Net,
    round: u32,
    from: usize,
    send: Vec<Bytes>,
    n: usize,
) {
    for bytes in send {
        match &mut procs[from] {
            BProc::Correct(_) => {
                for to in 0..n {
                    net.send(round, round + 1, from, to, bytes.clone());
                }
            }
            BProc::Byz { mask, mutate, .. } => {
                let mask = *mask;
                for to in 0..n {
                    let out = if mask >> to & 1 == 1 {
                        mutate(&bytes)
                    } else {
                        bytes.clone()
                    };
                    net.send(round, round + 1, from, to, out);
                }
            }
        }
    }
}

fn correct_bracha(procs: &[BProc]) -> impl Iterator<Item = (usize, &Bracha)> {
    procs.iter().enumerate().filter_map(|(id, p)| match p {
        BProc::Correct(e) => Some((id, e)),
        _ => None,
    })
}

// ---- ABBA ------------------------------------------------------------

enum AProc {
    Correct(Box<Abba>),
    /// Round-1 signed equivocation (a different, correctly-signed
    /// pre-vote per mask side), one garbage salvo, then silence.
    Byz { keys: Box<AbbaKeys>, mask: u64 },
}

fn run_abba(s: &Schedule) -> RunReport {
    let f = (s.n - 1) / 3;
    let keys = AbbaKeys::trusted_setup(s.n, f, s.seed);
    let mut procs: Vec<AProc> = keys
        .into_iter()
        .enumerate()
        .map(|(id, k)| match s.byz.iter().find(|b| b.id == id) {
            None => AProc::Correct(Box::new(Abba::new(
                s.n,
                f,
                id,
                s.proposals[id],
                k,
                s.seed.wrapping_add(31 * id as u64),
            ))),
            Some(b) => AProc::Byz {
                keys: Box::new(k),
                mask: match b.strategy {
                    ByzStrategy::SplitBrain => b.mask,
                    ByzStrategy::Flip => u64::MAX,
                },
            },
        })
        .collect();

    let mut net = Net::new(s);
    let mut rounds_used = s.max_rounds;
    let mut stalled = false;
    for round in 1..=s.max_rounds {
        if round == 1 {
            for (id, proc) in procs.iter_mut().enumerate() {
                match proc {
                    AProc::Correct(e) => {
                        let send = e.on_start().send;
                        for bytes in send {
                            for to in 0..s.n {
                                net.send(round, round + 1, id, to, bytes.clone());
                            }
                        }
                    }
                    AProc::Byz { keys, mask } => {
                        // Equivocate the unjustified round-1 pre-vote
                        // along the mask, then flood one garbage salvo.
                        let pv: [Bytes; 2] = [
                            round1_prevote(keys, false).encode(),
                            round1_prevote(keys, true).encode(),
                        ];
                        let mask = *mask;
                        for to in 0..s.n {
                            let bytes = pv[(mask >> to & 1) as usize].clone();
                            net.send(round, round + 1, id, to, bytes);
                        }
                        for (bytes, _) in abba_garbage_votes(id, 1, 0) {
                            for to in 0..s.n {
                                net.send(round, round + 1, id, to, bytes.clone());
                            }
                        }
                    }
                }
            }
        }
        for (_, from, to, _, bytes) in net.take(round) {
            if let AProc::Correct(e) = &mut procs[to] {
                let send = e.on_message(from, &bytes).send;
                for out in send {
                    for dst in 0..s.n {
                        net.send(round, round + 1, to, dst, out.clone());
                    }
                }
            }
        }
        if correct_abba(&procs).all(|(_, e)| e.decision().is_some()) {
            rounds_used = round;
            break;
        }
        if net.is_empty() {
            rounds_used = round;
            stalled = true;
            break;
        }
    }

    let decisions: Vec<Option<bool>> = procs
        .iter()
        .map(|p| match p {
            AProc::Correct(e) => e.decision(),
            _ => None,
        })
        .collect();
    let detail = |undecided: &[usize]| {
        undecided
            .iter()
            .map(|&id| {
                let AProc::Correct(e) = &procs[id] else {
                    unreachable!("undecided list holds correct ids")
                };
                format!(
                    "p{id} round={}{}",
                    e.round(),
                    if stalled { " [stalled]" } else { "" }
                )
            })
            .collect::<Vec<_>>()
            .join(", ")
    };
    // The round-1 pre-vote values the Byzantine parties signed (the
    // per-receiver bit of each mask), for the justified-validity check.
    let mut injected = Vec::new();
    for p in &procs {
        if let AProc::Byz { mask, .. } = p {
            for to in 0..s.n {
                let bit = *mask >> to & 1 == 1;
                if !injected.contains(&bit) {
                    injected.push(bit);
                }
            }
        }
    }
    finish(s, decisions, rounds_used, net, s.within_sigma_budget(), &injected, detail)
}

fn correct_abba(procs: &[AProc]) -> impl Iterator<Item = (usize, &Abba)> {
    procs.iter().enumerate().filter_map(|(id, p)| match p {
        AProc::Correct(e) => Some((id, &**e)),
        _ => None,
    })
}

// ---- property checks -------------------------------------------------

fn finish(
    s: &Schedule,
    decisions: Vec<Option<bool>>,
    rounds_used: u32,
    net: Net,
    eligible: bool,
    injected: &[bool],
    liveness_detail: impl Fn(&[usize]) -> String,
) -> RunReport {
    let correct: Vec<usize> = (0..s.n).filter(|&id| !s.is_byz(id)).collect();
    let decided: Vec<(usize, bool)> = correct
        .iter()
        .filter_map(|&id| decisions[id].map(|d| (id, d)))
        .collect();

    // Agreement: every pair of correct decisions matches.
    let mut violation = None;
    if let Some(&first) = decided.first() {
        if let Some(&other) = decided.iter().find(|&&(_, d)| d != first.1) {
            violation = Some(Violation::Agreement { a: first, b: other });
        }
    }

    // Validity: unanimous correct proposals force the decision — unless
    // the adversary legitimately injected the other value into the
    // protocol (`injected`). That out exists only for ABBA, whose
    // round-1 pre-votes carry no justification: a Byzantine party can
    // sign the opposite value, push every correct party to a mixed
    // pre-vote set and thus an abstain main-vote, and let the shared
    // coin land on the injected value. That execution is correct CKS
    // behaviour (pre-voted values are all "justified" in round 1), so
    // flagging it would indict the spec, not the code.
    if violation.is_none() {
        let props: Vec<bool> = correct.iter().map(|&id| s.proposals[id]).collect();
        if let Some(&unanimous) = props.first() {
            if props.iter().all(|&p| p == unanimous) && !injected.contains(&!unanimous) {
                if let Some(&(id, _)) = decided.iter().find(|&&(_, d)| d != unanimous) {
                    violation = Some(Violation::Validity {
                        proposal: unanimous,
                        id,
                    });
                }
            }
        }
    }

    // Liveness: within the omission budget every correct process must
    // decide (Turquois); the reliable-link baselines must always decide
    // — unless a partition is in play (its heal may sit past
    // `max_rounds`, and pre-heal no-decision is the *expected* outcome
    // for a sub-quorum side; the partition fixtures assert decision
    // explicitly on healed runs instead).
    let liveness_guaranteed = match s.engine {
        EngineKind::Turquois => eligible,
        EngineKind::Bracha | EngineKind::Abba => s.partition.is_none(),
    };
    if violation.is_none() && liveness_guaranteed {
        let undecided: Vec<usize> = correct
            .iter()
            .copied()
            .filter(|&id| decisions[id].is_none())
            .collect();
        if !undecided.is_empty() {
            let detail = liveness_detail(&undecided);
            violation = Some(Violation::Liveness { undecided, detail });
        }
    }

    RunReport {
        decisions,
        rounds_used,
        delivered: net.delivered,
        dropped: net.dropped,
        eligible,
        violation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{ByzSpec, Fault};

    fn base(engine: EngineKind, n: usize) -> Schedule {
        Schedule {
            engine,
            n,
            seed: 42,
            proposals: vec![true; n],
            byz: Vec::new(),
            window: 6,
            max_rounds: 66,
            faults: Vec::new(),
            partition: None,
        }
    }

    #[test]
    fn faultless_unanimous_runs_decide_cleanly() {
        for engine in [EngineKind::Turquois, EngineKind::Bracha, EngineKind::Abba] {
            let s = base(engine, 4);
            let r = run_schedule(&s);
            assert_eq!(r.violation, None, "{}: {:?}", engine.name(), r.violation);
            assert!(r.decisions.iter().all(|d| *d == Some(true)), "{engine:?}");
        }
    }

    #[test]
    fn split_brain_byzantine_cannot_break_safety() {
        for engine in [EngineKind::Turquois, EngineKind::Bracha, EngineKind::Abba] {
            let mut s = base(engine, 4);
            s.byz = vec![ByzSpec {
                id: 3,
                mask: 0b0011,
                strategy: ByzStrategy::SplitBrain,
            }];
            let r = run_schedule(&s);
            assert_eq!(r.violation, None, "{}: {:?}", engine.name(), r.violation);
        }
    }

    #[test]
    fn drops_inside_window_do_not_break_turquois() {
        let mut s = base(EngineKind::Turquois, 4);
        s.proposals = vec![true, false, true, false];
        for round in 1..=s.window {
            s.faults.push(Fault {
                round,
                from: 0,
                to: 1,
                kind: FaultKind::Drop,
            });
            s.faults.push(Fault {
                round,
                from: 2,
                to: 3,
                kind: FaultKind::Delay(2),
            });
        }
        let r = run_schedule(&s);
        assert_eq!(r.violation, None, "{:?}", r.violation);
        assert!(r.dropped > 0);
    }

    #[test]
    fn duplicates_are_harmless() {
        let mut s = base(EngineKind::Bracha, 4);
        for round in 1..=s.window {
            for from in 0..4 {
                s.faults.push(Fault {
                    round,
                    from,
                    to: (from + 1) % 4,
                    kind: FaultKind::Duplicate,
                });
            }
        }
        let r = run_schedule(&s);
        assert_eq!(r.violation, None, "{:?}", r.violation);
    }

    #[test]
    fn runs_are_deterministic() {
        let mut s = base(EngineKind::Turquois, 7);
        s.proposals = (0..7).map(|i| i % 2 == 0).collect();
        s.byz = vec![ByzSpec {
            id: 6,
            mask: 0b0101010,
            strategy: ByzStrategy::SplitBrain,
        }];
        assert_eq!(run_schedule(&s), run_schedule(&s));
    }
}
