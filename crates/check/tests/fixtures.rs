//! Replays every checked-in `tests/fixtures/*.schedule` file and
//! asserts the recorded expectation, plus targeted partition-action
//! coverage: a healed minority catches up, and truncating a run before
//! the heal leaves every sub-quorum side undecided — across all three
//! engines.

use turquois_check::drive::run_schedule;
use turquois_check::replay::{parse, to_text, Expectation};
use turquois_check::schedule::{EngineKind, Partition, Schedule};

/// Loads and parses every fixture in `tests/fixtures/`.
fn fixtures() -> Vec<(String, Schedule, Expectation, String)> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures");
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir).expect("fixtures dir exists") {
        let path = entry.expect("readable dir entry").path();
        if path.extension().is_none_or(|e| e != "schedule") {
            continue;
        }
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let text = std::fs::read_to_string(&path).expect("fixture readable");
        let (schedule, expect) =
            parse(&text).unwrap_or_else(|e| panic!("fixture {name} does not parse: {e}"));
        out.push((name, schedule, expect, text));
    }
    assert!(!out.is_empty(), "no fixtures checked in");
    out
}

/// Every fixture replays to its recorded expectation and is stored in
/// canonical form (re-rendering the parse reproduces the non-comment
/// lines exactly).
#[test]
fn fixtures_replay_to_their_recorded_expectation() {
    for (name, schedule, expect, text) in fixtures() {
        let report = run_schedule(&schedule);
        match expect {
            Expectation::Clean => {
                assert_eq!(report.violation, None, "{name}: {:?}", report.violation);
            }
            Expectation::Violation(kind) => {
                let v = report
                    .violation
                    .unwrap_or_else(|| panic!("{name}: expected a {kind} violation, got none"));
                assert_eq!(v.kind(), kind, "{name}");
            }
        }
        let canonical = to_text(&schedule, expect, &[]);
        let stored: String = text
            .lines()
            .filter(|l| !l.trim_start().starts_with('#'))
            .map(|l| format!("{l}\n"))
            .collect();
        assert_eq!(stored, canonical, "{name} is not in canonical form");
    }
}

/// The healed-minority fixture proves recovery, not mere survival: the
/// full replay decides everywhere, while the same schedule truncated to
/// `heal_round - 1` leaves the stranded process undecided (and the
/// quorum-keeping majority decided) — the decision the minority reaches
/// is the majority's, carried over by post-heal justified rebroadcasts.
#[test]
fn healed_minority_catches_up_because_of_the_heal() {
    let (_, schedule, _, _) = fixtures()
        .into_iter()
        .find(|(name, ..)| name == "healed_minority_catches_up.schedule")
        .expect("fixture present");
    let p = schedule.partition.expect("fixture carries a partition");

    let full = run_schedule(&schedule);
    assert_eq!(full.violation, None, "{:?}", full.violation);
    assert!(
        full.decisions.iter().all(|d| d.is_some()),
        "healed run must decide everywhere: {:?}",
        full.decisions
    );

    let mut truncated = schedule.clone();
    truncated.max_rounds = p.heal_round - 1;
    let pre_heal = run_schedule(&truncated);
    assert_eq!(pre_heal.violation, None, "{:?}", pre_heal.violation);
    assert_eq!(
        pre_heal.decisions[4], None,
        "stranded minority decided before the heal"
    );
    let majority_decision = pre_heal.decisions[0].expect("majority side decided while split");
    assert_eq!(
        full.decisions[4],
        Some(majority_decision),
        "minority must adopt the majority's split-time decision"
    );
}

/// Partition actions across every engine: a (n−f)|f split heals inside
/// the run and every correct process decides with no violation, while
/// the run truncated to `heal_round - 1` leaves the sub-quorum side
/// undecided. Deterministic loop (the check crate has no proptest
/// dependency); the harness-level proptest covers random schedules.
#[test]
fn sub_quorum_sides_never_decide_before_the_heal() {
    for engine in [EngineKind::Turquois, EngineKind::Bracha, EngineKind::Abba] {
        for n in [5usize, 7] {
            let f = (n - 1) / 3;
            let cut = n - f; // majority keeps every engine's quorum
            let mask = (1u64 << cut) - 1;
            let schedule = Schedule {
                engine,
                n,
                seed: 0x5117 + n as u64,
                proposals: (0..n).map(|i| i % 2 == 0).collect(),
                byz: Vec::new(),
                window: 16,
                max_rounds: 94,
                faults: Vec::new(),
                partition: Some(Partition {
                    mask,
                    split_round: 1,
                    heal_round: 13,
                }),
            };
            assert!(!schedule.within_sigma_budget(), "partitioned => ineligible");

            let full = run_schedule(&schedule);
            assert_eq!(full.violation, None, "{} n={n}: {:?}", engine.name(), full.violation);
            assert!(
                full.decisions.iter().all(|d| d.is_some()),
                "{} n={n}: healed run must decide everywhere: {:?}",
                engine.name(),
                full.decisions
            );

            let mut truncated = schedule.clone();
            truncated.max_rounds = 12;
            let pre_heal = run_schedule(&truncated);
            assert_eq!(pre_heal.violation, None, "{} n={n}", engine.name());
            for id in cut..n {
                assert_eq!(
                    pre_heal.decisions[id], None,
                    "{} n={n}: sub-quorum p{id} decided before the heal",
                    engine.name()
                );
            }
        }
    }
}
