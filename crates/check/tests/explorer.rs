//! Integration sweeps for the schedule explorer.
//!
//! The default sweep size is sized for CI (~300 schedules per engine);
//! set `TURQUOIS_CHECK_SCHEDULES` to run deeper local sweeps — the
//! pre-merge reference was 10 000 schedules per engine with zero
//! violations and every ≤ σ schedule deciding.
//!
//! With `--features mutation-smoke` the planted quorum bug
//! (`2·count > n+f` weakened to `>=`) is live in `turquois-core`; the
//! [`mutation`] module then asserts the explorer finds and shrinks an
//! agreement violation. The bug only bites when `n+f` is even (the
//! paper's own sizes all give odd `n+f`), which is why the smoke runs
//! at `n = 5`.

use turquois_check::explore::{explore, ExploreConfig};
use turquois_check::schedule::EngineKind;
use turquois_harness::runner::threads_from_env;

fn sweep_size() -> usize {
    match std::env::var("TURQUOIS_CHECK_SCHEDULES") {
        Ok(v) => v.parse().expect("TURQUOIS_CHECK_SCHEDULES must be a count"),
        Err(_) => 300,
    }
}

fn sweep(engine: EngineKind, n: usize) -> ExploreConfig {
    ExploreConfig {
        engine,
        n,
        schedules: sweep_size(),
        base_seed: 20100628,
    }
}

/// Asserts a sweep is violation-free and that adversarial schedules
/// still let every correct process decide (the generator caps delays
/// and the drivers run a recovery tail past the window, so decision is
/// expected even beyond the σ budget).
#[track_caller]
fn assert_clean(cfg: ExploreConfig) {
    let report = explore(cfg, threads_from_env());
    assert_eq!(report.explored, cfg.schedules);
    assert!(
        report.violations.is_empty(),
        "{} n={} found violations:\n{}",
        cfg.engine.name(),
        cfg.n,
        report.text
    );
    assert_eq!(
        report.decided, report.explored,
        "{} n={}: undecided schedules without a reported violation",
        cfg.engine.name(),
        cfg.n
    );
    assert!(report.eligible > 0, "sweep generated no ≤ σ schedules");
}

#[cfg(not(feature = "mutation-smoke"))]
mod clean {
    use super::*;

    #[test]
    fn turquois_n4_sweep_is_clean() {
        assert_clean(sweep(EngineKind::Turquois, 4));
    }

    #[test]
    fn turquois_n7_sweep_is_clean() {
        assert_clean(sweep(EngineKind::Turquois, 7));
    }

    /// First size past the paper's exploration shapes, exercising the
    /// compact per-sender stores with `f = 2` and a 9-wide sender
    /// bitmask (`n+f = 11` is odd, so the true quorum has slack and the
    /// sweep must stay clean).
    #[test]
    fn turquois_n9_sweep_is_clean() {
        assert_clean(sweep(EngineKind::Turquois, 9));
    }

    #[test]
    fn bracha_n4_sweep_is_clean() {
        assert_clean(sweep(EngineKind::Bracha, 4));
    }

    #[test]
    fn abba_n4_sweep_is_clean() {
        assert_clean(sweep(EngineKind::Abba, 4));
    }

    /// The partition schedules that break the mutated quorum (see the
    /// `mutation` module) must be survivable by the real protocol:
    /// in-window both partition sides stall below the true quorum, and
    /// the recovery tail reconciles them to one decision.
    #[test]
    fn turquois_n5_partition_schedules_are_survived() {
        assert_clean(sweep(EngineKind::Turquois, 5));
    }
}

/// Report text must be byte-identical at any worker count — exploration
/// rides the same `run_indexed` fan-out as the experiment binaries.
#[test]
fn report_is_byte_identical_at_1_and_8_threads() {
    for (engine, n) in [
        (EngineKind::Turquois, 4),
        (EngineKind::Bracha, 4),
        (EngineKind::Abba, 4),
    ] {
        let cfg = ExploreConfig {
            engine,
            n,
            schedules: 48,
            base_seed: 20100628,
        };
        let serial = explore(cfg, 1);
        let parallel = explore(cfg, 8);
        assert_eq!(serial.text, parallel.text, "{} n={n}", engine.name());
    }
}

#[cfg(feature = "mutation-smoke")]
mod mutation {
    use super::*;

    /// The planted `>=` quorum bug lets two disjoint-but-for-the-
    /// equivocator 3-subsets of `n+f = 6` both clear the weakened
    /// threshold, so a split-brain Byzantine plus a partition drives the
    /// two sides to different decisions. The explorer must find that
    /// agreement violation within 10 000 schedules and shrink it to a
    /// minimal counterexample that still fails.
    #[test]
    fn planted_quorum_bug_is_found_and_shrunk() {
        const BUDGET: usize = 10_000;
        // The partition variant fires every 4th schedule; 64 is plenty
        // while keeping the smoke fast. BUDGET is the acceptance bound.
        let cfg = ExploreConfig {
            engine: EngineKind::Turquois,
            n: 5,
            schedules: 64,
            base_seed: 20100628,
        };
        let report = explore(cfg, threads_from_env());
        let first = report
            .violations
            .first()
            .expect("mutation smoke found no violation — quorum bug not detected");
        assert!(first.index < BUDGET, "first violation past the smoke budget");
        assert_eq!(first.violation.kind(), "agreement");
        assert_eq!(first.shrunk_violation.kind(), "agreement");
        // Shrinking must actually bite: the generated partition schedule
        // carries dozens of faults and a 12-round window.
        assert!(
            first.shrunk.faults.len() < 30,
            "shrunk schedule still has {} faults",
            first.shrunk.faults.len()
        );
        assert!(first.shrunk.window <= 6, "window not tightened: {}", first.shrunk.window);
        assert_eq!(first.shrunk.byz.len(), 1, "the single split-brain byz is load-bearing");
        assert!(
            first.fixture.contains("expect agreement-violation"),
            "fixture must record the violated property:\n{}",
            first.fixture
        );
    }

    /// Scale-shaped repeat of the smoke: `n = 8` gives `f = 2` and
    /// `n+f = 10` (even), so each partition side sees 3 correct + 2
    /// equivocating Byzantine = 5 distinct senders — exactly the
    /// weakened `2·5 ≥ 10` threshold, one short of the true quorum 6.
    /// This proves the compact per-sender stores (bitmask tallies, two
    /// Byzantine bits set in one mask word) still feed the quorum
    /// comparison exactly; a tally bug that over-counts would mask the
    /// planted off-by-one and this test would stop finding it.
    #[test]
    fn planted_quorum_bug_is_found_at_scale_shape() {
        let cfg = ExploreConfig {
            engine: EngineKind::Turquois,
            n: 8,
            schedules: 64,
            base_seed: 20100628,
        };
        let report = explore(cfg, threads_from_env());
        let first = report
            .violations
            .first()
            .expect("scale-shaped mutation smoke found no violation");
        assert_eq!(first.violation.kind(), "agreement");
        assert_eq!(first.shrunk_violation.kind(), "agreement");
    }
}
