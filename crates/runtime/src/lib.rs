//! # turquois-runtime — a live Turquois runtime over real UDP sockets
//!
//! The simulator in `wireless-net` reproduces the paper's testbed; this
//! crate demonstrates that the same sans-io protocol engine runs
//! unchanged against a *real* network stack. Each process is a thread
//! with its own `std::net::UdpSocket` bound to `127.0.0.1`; "broadcast"
//! is emulated by fanning a datagram out to every process's port (the
//! paper's single-hop broadcast domain, minus the radio). Loss can be
//! injected at the receiver to exercise the protocol's
//! omission tolerance over real sockets.
//!
//! This runtime is intentionally modest: it exists to prove the engine
//! against real I/O (see `examples/live_udp.rs`), not to be a deployment
//! vehicle — a real deployment would bind `255.255.255.255:port` on an
//! 802.11 interface in ad hoc mode, which is exactly one socket call
//! away.
//!
//! # Example
//!
//! ```
//! use turquois_runtime::{Cluster, ClusterConfig};
//!
//! let config = ClusterConfig {
//!     n: 4,
//!     proposals: vec![true, true, false, true],
//!     seed: 7,
//!     ..ClusterConfig::default()
//! };
//! let decisions = Cluster::run(config).expect("cluster completes");
//! let first = decisions[0].expect("all decide");
//! assert!(decisions.iter().all(|d| *d == Some(first)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::net::UdpSocket;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use turquois_core::config::Config;
use turquois_core::instance::Turquois;
use turquois_core::KeyRing;

/// Configuration of a live localhost cluster.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Number of processes (threads).
    pub n: usize,
    /// Initial proposals, one per process.
    pub proposals: Vec<bool>,
    /// Master seed (keys, coins, loss injection).
    pub seed: u64,
    /// Clock-tick interval (paper: 10 ms).
    pub tick: Duration,
    /// Receiver-side injected loss probability per datagram.
    pub loss: f64,
    /// Wall-clock budget for the run.
    pub timeout: Duration,
    /// One-time-signature phases to pre-distribute.
    pub key_phases: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            n: 4,
            proposals: vec![true; 4],
            seed: 0,
            tick: Duration::from_millis(10),
            loss: 0.0,
            timeout: Duration::from_secs(30),
            key_phases: 600,
        }
    }
}

/// Errors from running a cluster.
#[derive(Debug)]
pub enum ClusterError {
    /// Invalid parameters (see message).
    Config(String),
    /// Socket setup or I/O failed.
    Io(std::io::Error),
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::Config(msg) => write!(f, "invalid cluster config: {msg}"),
            ClusterError::Io(e) => write!(f, "cluster I/O error: {e}"),
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<std::io::Error> for ClusterError {
    fn from(e: std::io::Error) -> Self {
        ClusterError::Io(e)
    }
}

/// A live localhost cluster runner.
#[derive(Debug)]
pub struct Cluster;

impl Cluster {
    /// Runs one consensus over real UDP sockets; returns each process's
    /// decision (`None` if it had not decided when every thread stopped).
    ///
    /// # Errors
    ///
    /// [`ClusterError::Config`] for inconsistent parameters,
    /// [`ClusterError::Io`] for socket failures.
    pub fn run(config: ClusterConfig) -> Result<Vec<Option<bool>>, ClusterError> {
        let n = config.n;
        if config.proposals.len() != n {
            return Err(ClusterError::Config(format!(
                "{} proposals for {n} processes",
                config.proposals.len()
            )));
        }
        if !(0.0..=1.0).contains(&config.loss) {
            return Err(ClusterError::Config(format!(
                "loss {} out of range",
                config.loss
            )));
        }
        let cfg = Config::evaluation(n).map_err(|e| ClusterError::Config(e.to_string()))?;

        // Bind every socket up front so the port list is known to all.
        let sockets: Vec<UdpSocket> = (0..n)
            .map(|_| UdpSocket::bind("127.0.0.1:0"))
            .collect::<Result<_, _>>()?;
        let ports: Vec<u16> = sockets
            .iter()
            .map(|s| s.local_addr().map(|a| a.port()))
            .collect::<Result<_, _>>()?;
        for s in &sockets {
            s.set_read_timeout(Some(Duration::from_millis(2)))?;
        }

        let rings = KeyRing::trusted_setup(n, config.key_phases, config.seed);
        let decisions: Arc<Mutex<Vec<Option<bool>>>> = Arc::new(Mutex::new(vec![None; n]));
        let stop = Arc::new(AtomicBool::new(false));

        let mut handles = Vec::new();
        for (id, (socket, ring)) in sockets.into_iter().zip(rings).enumerate() {
            let ports = ports.clone();
            let decisions = Arc::clone(&decisions);
            let stop = Arc::clone(&stop);
            let proposal = config.proposals[id];
            let tick = config.tick;
            let loss = config.loss;
            let seed = config.seed;
            handles.push(std::thread::spawn(move || {
                let mut instance = Turquois::new(cfg, id, proposal, ring, seed + 1000 + id as u64);
                let mut rng = StdRng::seed_from_u64(seed ^ (0x10c0 + id as u64));
                let mut buf = [0u8; 65_536];
                let mut last_tick = Instant::now() - tick;
                loop {
                    if stop.load(Ordering::Relaxed) {
                        return; // signalled by the coordinator
                    }
                    // Task T1: tick on schedule (phase changes re-tick
                    // immediately below).
                    if last_tick.elapsed() >= tick {
                        last_tick = Instant::now();
                        if let Ok(out) = instance.on_tick() {
                            for &port in &ports {
                                let _ = socket.send_to(&out.bytes, ("127.0.0.1", port));
                            }
                        }
                    }
                    // Task T2: drain arrivals.
                    match socket.recv_from(&mut buf) {
                        Ok((len, _)) => {
                            if loss > 0.0 && rng.gen_bool(loss) {
                                continue; // injected omission
                            }
                            let receipt = instance.on_message(&buf[..len]);
                            if let Some(v) = receipt.newly_decided {
                                decisions.lock().expect("decisions lock")[id] = Some(v);
                            }
                            if receipt.phase_advanced {
                                last_tick = Instant::now() - tick; // tick now
                            }
                        }
                        Err(ref e)
                            if e.kind() == std::io::ErrorKind::WouldBlock
                                || e.kind() == std::io::ErrorKind::TimedOut => {}
                        Err(_) => return,
                    }
                }
            }));
        }

        // Wait until everyone decided or the timeout expires.
        let deadline = Instant::now() + config.timeout;
        loop {
            {
                let d = decisions.lock().expect("decisions lock");
                if d.iter().all(|x| x.is_some()) {
                    break;
                }
            }
            if Instant::now() >= deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        stop.store(true, Ordering::Relaxed); // signals every thread
        for h in handles {
            let _ = h.join();
        }
        let result = decisions.lock().expect("decisions lock").clone();
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unanimous_cluster_decides() {
        let config = ClusterConfig {
            n: 4,
            proposals: vec![true; 4],
            seed: 1,
            ..ClusterConfig::default()
        };
        let decisions = Cluster::run(config).expect("runs");
        assert!(decisions.iter().all(|d| *d == Some(true)), "{decisions:?}");
    }

    #[test]
    fn divergent_cluster_agrees() {
        let config = ClusterConfig {
            n: 4,
            proposals: vec![false, true, false, true],
            seed: 2,
            ..ClusterConfig::default()
        };
        let decisions = Cluster::run(config).expect("runs");
        let first = decisions[0].expect("decides");
        assert!(decisions.iter().all(|d| *d == Some(first)), "{decisions:?}");
    }

    #[test]
    fn lossy_cluster_still_terminates() {
        let config = ClusterConfig {
            n: 4,
            proposals: vec![true; 4],
            seed: 3,
            loss: 0.2,
            ..ClusterConfig::default()
        };
        let decisions = Cluster::run(config).expect("runs");
        assert!(decisions.iter().all(|d| *d == Some(true)), "{decisions:?}");
    }

    #[test]
    fn config_validation() {
        let bad = ClusterConfig {
            n: 4,
            proposals: vec![true; 3],
            ..ClusterConfig::default()
        };
        assert!(matches!(Cluster::run(bad), Err(ClusterError::Config(_))));
        let bad_loss = ClusterConfig {
            loss: 2.0,
            ..ClusterConfig::default()
        };
        assert!(matches!(
            Cluster::run(bad_loss),
            Err(ClusterError::Config(_))
        ));
    }
}
