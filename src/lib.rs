//! # Turquois — Byzantine consensus for wireless ad hoc networks
//!
//! Facade crate for the reproduction of *Moniz, Neves, Correia —
//! "Turquois: Byzantine Consensus in Wireless Ad hoc Networks", DSN 2010*.
//! Re-exports the workspace crates under stable module names:
//!
//! * [`core`] — the Turquois protocol itself (sans-io state machine).
//! * [`crypto`] — hash functions, one-time signatures, simulated
//!   threshold crypto, and the CPU cost model.
//! * [`net`] — the deterministic 802.11b wireless network simulator.
//! * [`baselines`] — Bracha's protocol and ABBA, the paper's comparison
//!   points.
//! * [`runtime`] — a live thread-per-process runtime over real UDP
//!   sockets.
//! * [`harness`] — the experiment harness regenerating the paper's
//!   evaluation.
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs` for a complete run; the short version:
//!
//! ```
//! use turquois::harness::{Scenario, FaultLoad, ProposalDistribution, Protocol};
//!
//! let scenario = Scenario::new(Protocol::Turquois, 4)
//!     .proposals(ProposalDistribution::Divergent)
//!     .fault_load(FaultLoad::FailureFree)
//!     .seed(7);
//! let outcome = scenario.run_once().expect("consensus terminates");
//! assert!(outcome.agreement_holds());
//! ```

pub use turquois_baselines as baselines;
pub use turquois_core as core;
pub use turquois_crypto as crypto;
pub use turquois_harness as harness;
pub use turquois_runtime as runtime;
pub use wireless_net as net;
