//! Sensor fleet: the paper's motivating scenario — unplanned wireless
//! deployments that must coordinate despite node compromise.
//!
//! Sixteen battery-powered sensors on a shared 802.11b channel must
//! agree whether to raise an evacuation alarm. Seven sensors detected
//! the hazard (propose 1), nine did not (propose 0); five sensors have
//! been captured by an adversary and actively fight the decision. The
//! fleet must reach a *common* decision — an alarm raised by half the
//! sensors is worse than no alarm at all.
//!
//! ```text
//! cargo run --release --example sensor_fleet
//! ```

use std::time::Duration;
use turquois::core::config::Config;
use turquois::core::instance::Turquois;
use turquois::core::KeyRing;
use turquois::crypto::cost::CostModel;
use turquois::harness::adapters::{RunProbe, TurquoisApp};
use turquois::harness::adversary::ByzantineTurquoisApp;
use turquois::net::fault::GilbertElliott;
use turquois::net::sim::{Application, SimConfig, Simulator};
use turquois::net::time::SimTime;

fn main() {
    let n = 16;
    let cfg = Config::evaluation(n).expect("16 sensors admit f = 5");
    let f = cfg.f();
    println!("sensor fleet: n = {n}, tolerating f = {f} captured sensors, k = {}", cfg.k());

    // Detections: sensors 0..7 saw the hazard.
    let proposals: Vec<bool> = (0..n).map(|i| i < 7).collect();
    // Sensors 11..16 are captured.
    let captured: Vec<bool> = (0..n).map(|i| i >= n - f).collect();

    let rings = KeyRing::trusted_setup(n, 600, 99);
    let probe = RunProbe::new(n);
    let cost = CostModel::pentium3_600();
    let apps: Vec<Box<dyn Application>> = rings
        .into_iter()
        .enumerate()
        .map(|(i, ring)| {
            if captured[i] {
                let tracker = Turquois::new(cfg, i, proposals[i], ring.clone(), 99 + i as u64);
                Box::new(ByzantineTurquoisApp::new(tracker, ring)) as Box<dyn Application>
            } else {
                let inst = Turquois::new(cfg, i, proposals[i], ring, 99 + i as u64);
                Box::new(TurquoisApp::new(inst, cost, probe.clone())) as Box<dyn Application>
            }
        })
        .collect();

    // Outdoor channel: bursty interference (Gilbert–Elliott).
    let fault = GilbertElliott::new(0.02, 0.3, 0.005, 0.5, 7);
    let sim_cfg = SimConfig {
        seed: 99,
        start_jitter: Duration::from_millis(2),
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(sim_cfg, Box::new(fault), apps);
    let status = sim.run_until_k_decided(cfg.k(), SimTime::from_millis(60_000));
    println!("run status: {status:?} at t = {}", sim.now());

    let mut alarm_votes = 0;
    let mut decided = 0;
    for i in 0..n {
        if captured[i] {
            continue;
        }
        if let Some(d) = sim.decisions()[i] {
            decided += 1;
            if d.value {
                alarm_votes += 1;
            }
            println!(
                "  sensor {i:2}: detected={} decided={} at {:.1} ms",
                proposals[i] as u8,
                d.value as u8,
                d.time.saturating_since(sim.start_times()[i]).as_secs_f64() * 1e3
            );
        }
    }
    assert!(decided >= cfg.k(), "k sensors must decide");
    assert!(
        alarm_votes == 0 || alarm_votes == decided,
        "agreement: the fleet must speak with one voice"
    );
    println!(
        "\nfleet decision: {} ({decided} sensors, unanimous despite {f} captured)",
        if alarm_votes > 0 { "RAISE ALARM" } else { "stand down" }
    );
    println!(
        "channel: {} frames, {} collisions, {} burst-loss drops",
        sim.stats().frames_sent(),
        sim.stats().collisions,
        sim.stats().fault_drops
    );
}
