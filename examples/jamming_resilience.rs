//! Jamming resilience: safety under unrestricted omissions, progress
//! once the channel clears.
//!
//! The communication failure model (paper §3) allows *any* number of
//! transmission omissions — up to and including a jammer silencing the
//! whole channel. Turquois promises: safety is never violated, and once
//! rounds with ≤ σ omissions come back, the protocol terminates. This
//! example jams the channel during the heart of the protocol exchange
//! and shows both halves of the promise.
//!
//! ```text
//! cargo run --release --example jamming_resilience
//! ```

use std::time::Duration;
use turquois::harness::{LossSpec, Protocol, ProposalDistribution, Scenario};

fn main() {
    // A 25 ms jamming burst starting 5 ms in — long enough to cover the
    // entire failure-free decision window (≈ 9 ms at n = 7).
    let jam = LossSpec::Jam {
        start_ms: 5,
        len_ms: 25,
    };
    let outcome = Scenario::new(Protocol::Turquois, 7)
        .proposals(ProposalDistribution::Divergent)
        .loss(jam)
        .seed(31)
        .time_limit(Duration::from_secs(30))
        .run_once()
        .expect("valid scenario");

    println!("jammer active 5 ms – 30 ms; consensus outcome:");
    let latencies = outcome.latencies_ms();
    for (i, ms) in latencies.iter().enumerate() {
        println!("  p{i}: decided after {ms:7.2} ms");
    }
    let max = latencies.iter().cloned().fold(0.0f64, f64::max);
    assert!(outcome.k_reached(), "progress resumes after the jammer stops");
    assert!(outcome.agreement_holds(), "safety despite unbounded omissions");
    assert!(
        max > 30.0,
        "decisions cannot complete while the jammer owns the channel"
    );
    println!(
        "\nall decided AFTER the jam window (latest {max:.1} ms > 30 ms); \
         {} frames were jammed",
        outcome.stats.fault_drops
    );

    // The same channel without a jammer, for contrast.
    let clean = Scenario::new(Protocol::Turquois, 7)
        .proposals(ProposalDistribution::Divergent)
        .seed(31)
        .run_once()
        .expect("valid scenario");
    println!(
        "for contrast, the unjammed channel decides in {:.1} ms",
        clean.mean_latency_ms().expect("clean run decides")
    );
}
