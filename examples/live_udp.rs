//! Live run: the same protocol engine, real UDP sockets.
//!
//! Everything else in this repository drives the sans-io engine from a
//! deterministic simulator; this example runs seven OS threads, each
//! with its own `UdpSocket`, fanning broadcasts across localhost — with
//! 15 % receiver-side packet loss injected for good measure.
//!
//! ```text
//! cargo run --release --example live_udp
//! ```

use std::time::{Duration, Instant};
use turquois::runtime::{Cluster, ClusterConfig};

fn main() {
    let n = 7;
    let config = ClusterConfig {
        n,
        proposals: (0..n).map(|i| i % 2 == 1).collect(),
        seed: 4242,
        tick: Duration::from_millis(10),
        loss: 0.15,
        timeout: Duration::from_secs(30),
        key_phases: 600,
    };
    println!("starting {n} UDP processes on 127.0.0.1 (divergent proposals, 15% loss)…");
    let start = Instant::now();
    let decisions = Cluster::run(config).expect("cluster runs");
    let elapsed = start.elapsed();

    for (i, d) in decisions.iter().enumerate() {
        match d {
            Some(v) => println!("  p{i}: decided {}", *v as u8),
            None => println!("  p{i}: no decision"),
        }
    }
    let first = decisions[0].expect("p0 decides");
    assert!(
        decisions.iter().all(|d| *d == Some(first)),
        "agreement over real sockets"
    );
    println!("\nconsensus on {} in {elapsed:.2?} of wall-clock time", first as u8);
}
