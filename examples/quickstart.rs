//! Quickstart: run one Turquois consensus in the simulated 802.11b
//! network and print what happened.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use turquois::harness::{FaultLoad, Protocol, ProposalDistribution, Scenario};

fn main() {
    // Ten nodes on a simulated 802.11b ad hoc network; proposals
    // diverge (odd ids propose 1, even ids propose 0); one third of the
    // nodes (f = 3) are Byzantine and follow the paper's §7.2 attack.
    let scenario = Scenario::new(Protocol::Turquois, 10)
        .proposals(ProposalDistribution::Divergent)
        .fault_load(FaultLoad::Byzantine)
        .seed(2026);

    let outcome = scenario.run_once().expect("valid scenario");

    println!("Turquois k-consensus, n = {}, f = {}, k = {}", outcome.n, outcome.f, outcome.k);
    println!("fault load: {}\n", outcome.fault_load.name());
    for i in 0..outcome.n {
        let role = if outcome.faulty[i] { "byzantine" } else { "correct" };
        match outcome.decisions[i] {
            Some(d) => {
                let latency =
                    d.time.saturating_since(outcome.start_times[i]).as_secs_f64() * 1e3;
                println!(
                    "  p{i} ({role:9}) proposed {} → decided {} after {latency:7.2} ms (phase {})",
                    outcome.proposals[i] as u8,
                    d.value as u8,
                    outcome.probe.phase_at_decision[i].unwrap_or(0),
                );
            }
            None => println!("  p{i} ({role:9}) proposed {} → (no decision)", outcome.proposals[i] as u8),
        }
    }
    println!();
    println!("agreement holds: {}", outcome.agreement_holds());
    println!("validity holds:  {}", outcome.validity_holds());
    println!(
        "network: {} data frames ({} collisions, {} injected omissions)",
        outcome.stats.frames_sent(),
        outcome.stats.collisions,
        outcome.stats.fault_drops,
    );
    assert!(outcome.agreement_holds() && outcome.validity_holds());
    assert!(outcome.k_reached(), "at least k correct processes decided");
}
