//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the property
//! testing subset this workspace uses is implemented here: the
//! [`prelude`] (with [`strategy::Strategy`], [`arbitrary::any`],
//! [`strategy::Just`], the `proptest!`/`prop_assert!`/`prop_oneof!`
//! macros and [`ProptestConfig`]), integer-range and tuple strategies,
//! and [`collection::vec()`].
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking** — a failing case reports its inputs (via the
//!   panic message's seed/case number) but is not minimized.
//! * **Deterministic seeding** — cases derive from a fixed seed and the
//!   test name, so failures always reproduce; `proptest-regressions`
//!   files are ignored.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// A failed test case (carries the failure message).
#[derive(Debug)]
pub struct TestCaseError {
    /// Human-readable reason for the failure.
    pub message: String,
}

impl TestCaseError {
    /// Creates a failure with the given reason.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use super::TestRng;
    use rand::Rng;

    /// Generates values of an associated type from a seeded RNG.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            (**self).new_value(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            (**self).new_value(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// Uniform choice among boxed strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Creates a union over the given options.
        ///
        /// # Panics
        ///
        /// Panics if `options` is empty.
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            let i = rng.gen_range(0..self.options.len());
            self.options[i].new_value(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod arbitrary {
    //! `any::<T>()` — uniform generation for primitive types.

    use super::strategy::Strategy;
    use super::TestRng;
    use rand::{Rng, RngCore};
    use std::marker::PhantomData;

    /// Types with a canonical uniform strategy.
    pub trait Arbitrary: Sized {
        /// Draws one uniformly distributed value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.gen()
        }
    }

    impl Arbitrary for u8 {
        fn arbitrary(rng: &mut TestRng) -> u8 {
            rng.next_u32() as u8
        }
    }

    impl Arbitrary for u16 {
        fn arbitrary(rng: &mut TestRng) -> u16 {
            rng.next_u32() as u16
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> u32 {
            rng.next_u32()
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }

    impl<const N: usize> Arbitrary for [u8; N] {
        fn arbitrary(rng: &mut TestRng) -> [u8; N] {
            let mut out = [0u8; N];
            rng.fill_bytes(&mut out);
            out
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Returns the canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng;

    /// A length specification for [`vec()`]: an exact count or a range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> SizeRange {
            SizeRange {
                min: exact,
                max: exact + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                min: *r.start(),
                max: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<T>` with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// The strategy returned by [`vec()`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..self.size.max);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! The case loop behind the `proptest!` macro.

    use super::{ProptestConfig, TestCaseError, TestRng};
    use rand::SeedableRng;

    /// Derives a per-test base seed from the test's name so different
    /// tests explore different streams, deterministically.
    fn name_seed(name: &str) -> u64 {
        // FNV-1a.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Runs `case` for `config.cases` deterministic cases.
    ///
    /// # Panics
    ///
    /// Panics (failing the enclosing `#[test]`) on the first case that
    /// returns an error, reporting the case number and per-case seed.
    pub fn run(
        config: &ProptestConfig,
        name: &str,
        mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    ) {
        let base = name_seed(name);
        for i in 0..config.cases as u64 {
            let seed = base.wrapping_add(i.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            let mut rng = TestRng::seed_from_u64(seed);
            if let Err(e) = case(&mut rng) {
                panic!("proptest case {i}/{} (seed {seed:#x}) failed: {e}", config.cases);
            }
        }
    }
}

/// `prop::` module alias as re-exported by the prelude.
pub mod prop {
    pub use crate::collection;
    pub use crate::strategy;
}

pub mod prelude {
    //! The glob-importable surface (`use proptest::prelude::*`).

    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
    pub use crate::{ProptestConfig, TestCaseError};
}

/// Asserts a condition inside a `proptest!` body, failing the case
/// (not panicking directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {} ({:?} vs {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{} ({:?} vs {:?})",
                format!($($fmt)*),
                l,
                r
            )));
        }
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(::std::boxed::Box::new($strategy) as ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>,)+
        ])
    };
}

/// Defines `#[test]` functions over generated inputs.
///
/// Supports the subset this workspace uses: an optional leading
/// `#![proptest_config(expr)]`, then `fn name(arg in strategy, ...)`
/// items carrying arbitrary attributes (`#[test]`, doc comments).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::test_runner::run(&config, stringify!($name), |rng| {
                    $(let $arg = $crate::strategy::Strategy::new_value(&($strat), rng);)+
                    #[allow(unused_mut)]
                    let mut body = || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    };
                    body()
                });
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges stay in bounds; tuples and maps compose.
        #[test]
        fn ranges_and_tuples(
            a in 3u32..9,
            pair in (0usize..4, any::<bool>()),
            v in prop::collection::vec(any::<u8>(), 2..5),
            exact in prop::collection::vec(0u64..10, 3),
            mapped in (1u8..4).prop_map(|x| x * 10),
            choice in prop_oneof![Just(1u8), Just(2u8)],
        ) {
            prop_assert!((3..9).contains(&a));
            prop_assert!(pair.0 < 4);
            prop_assert!((2..5).contains(&v.len()));
            prop_assert_eq!(exact.len(), 3);
            prop_assert!([10, 20, 30].contains(&mapped));
            prop_assert!(choice == 1u8 || choice == 2u8);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        use rand::SeedableRng;
        let s = crate::collection::vec(crate::arbitrary::any::<u16>(), 4);
        let a = s.new_value(&mut crate::TestRng::seed_from_u64(9));
        let b = s.new_value(&mut crate::TestRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_case_reports_seed() {
        crate::test_runner::run(
            &crate::ProptestConfig::with_cases(1),
            "failing_case_reports_seed",
            |_rng| Err(crate::TestCaseError::fail("boom")),
        );
    }
}
