//! A pooled encode arena: many messages, one allocation.
//!
//! The wire codecs in this workspace historically built every outgoing
//! message as its own `BytesMut` and froze it — two heap allocations
//! per message (the builder's `Vec` and the `Arc` made by `freeze`),
//! per delivery, per node, per tick. [`EncodeArena`] replaces that with
//! a single growable chunk per owner: callers stage one or more
//! encoded messages into the open chunk ([`EncodeArena::mark`] /
//! [`EncodeArena::buf`]), then [`EncodeArena::seal`] freezes the whole
//! chunk into one shared [`Bytes`] allocation and hands back cheap
//! zero-copy slices.
//!
//! Sealed chunks are tracked in a small *retired* ring; once every
//! outstanding slice of a chunk has been dropped (the arena holds the
//! only reference), its `Vec` is reclaimed into a free list and the
//! next chunk starts with warm capacity — steady state needs one
//! `Arc` allocation per seal and no buffer allocations at all.
//!
//! The arena is a host-side optimization only: it produces bit-for-bit
//! the same byte sequences as the per-message builders it replaces,
//! and the [`telemetry`] counters (`allocs_saved`, `arena_bytes`) make
//! the saving observable without touching simulated time.

use crate::{telemetry, Bytes};
use std::sync::Arc;

/// Free-list depth: reclaimed chunk buffers kept warm for reuse.
const FREE_CAP: usize = 8;
/// Retired-ring depth: sealed chunks watched for reclamation. Chunks
/// that retire past this bound are simply freed by their last consumer
/// instead of being recycled — correctness is unaffected.
const RETIRED_CAP: usize = 64;

/// A per-owner scratch buffer that encodes many messages into one
/// shared allocation.
///
/// # Example
///
/// ```
/// use bytes::arena::EncodeArena;
/// use bytes::BufMut;
///
/// let mut arena = EncodeArena::new();
/// // Stage two messages into the open chunk.
/// let a = arena.mark();
/// arena.buf().put_slice(b"first");
/// let a_end = arena.len();
/// let b = arena.mark();
/// arena.buf().put_slice(b"second");
/// let b_end = arena.len();
/// // One allocation for both; slices share it.
/// let chunk = arena.seal();
/// assert_eq!(&chunk.slice(a..a_end)[..], b"first");
/// assert_eq!(&chunk.slice(b..b_end)[..], b"second");
/// ```
#[derive(Debug, Default)]
pub struct EncodeArena {
    /// The chunk currently being written.
    open: Vec<u8>,
    /// Messages staged into `open` since the last seal.
    staged: usize,
    /// Whether `open` came off the free list (its buffer allocation is
    /// being reused rather than freshly made).
    open_recycled: bool,
    /// Reclaimed buffers awaiting reuse.
    free: Vec<Vec<u8>>,
    /// Sealed chunks still (possibly) referenced by consumers.
    retired: Vec<Bytes>,
}

impl EncodeArena {
    /// Creates an empty arena. No allocation happens until the first
    /// message is staged.
    pub fn new() -> EncodeArena {
        EncodeArena::default()
    }

    /// Begins staging a message; returns its start offset in the open
    /// chunk. Pair with [`EncodeArena::len`] after writing to obtain
    /// the `(start, end)` range to slice out of the sealed chunk.
    pub fn mark(&mut self) -> usize {
        self.staged += 1;
        self.open.len()
    }

    /// The write cursor: current length of the open chunk.
    pub fn len(&self) -> usize {
        self.open.len()
    }

    /// Whether the open chunk has no staged bytes.
    pub fn is_empty(&self) -> bool {
        self.open.is_empty()
    }

    /// The open chunk as a write target. `Vec<u8>` implements
    /// [`BufMut`](crate::BufMut), so wire encoders can write to it
    /// directly.
    pub fn buf(&mut self) -> &mut Vec<u8> {
        &mut self.open
    }

    /// Aborts the message staged at `mark`, rolling the open chunk
    /// back to that offset.
    pub fn truncate(&mut self, mark: usize) {
        self.open.truncate(mark);
        self.staged = self.staged.saturating_sub(1);
    }

    /// Freezes everything staged since the last seal into one shared
    /// [`Bytes`] chunk and returns it; callers slice their recorded
    /// `(start, end)` ranges out of it. Returns an empty `Bytes` when
    /// nothing was staged.
    ///
    /// Credits the [`telemetry`] counters: `arena_bytes` gains the
    /// sealed length, and `allocs_saved` gains the difference between
    /// the two-allocations-per-message cost of the per-message builder
    /// path and what the seal actually spent (one `Arc`, plus one
    /// buffer unless a reclaimed one was reused).
    pub fn seal(&mut self) -> Bytes {
        if self.open.is_empty() {
            self.staged = 0;
            return Bytes::new();
        }
        // Sweep first so a buffer freed since the last seal can serve
        // as the next open chunk right away.
        self.reclaim();
        let staged = std::mem::take(&mut self.staged);
        let recycled = self.open_recycled;
        let next = self.free.pop();
        self.open_recycled = next.is_some();
        let chunk_vec = std::mem::replace(&mut self.open, next.unwrap_or_default());
        telemetry::count_arena_bytes(chunk_vec.len());
        // Legacy cost: 2 allocations per message (builder Vec + freeze
        // Arc). Arena cost: 1 Arc here, plus 1 Vec unless recycled.
        let spent = 1 + usize::from(!recycled);
        let saved = (2 * staged).saturating_sub(spent);
        if saved > 0 {
            telemetry::count_allocs_saved(saved);
        }
        let chunk = Bytes::from(chunk_vec);
        if self.retired.len() >= RETIRED_CAP {
            // A ring full of still-referenced chunks (e.g. pinned as
            // memo-cache keys that outlive the arena's horizon) must
            // not permanently block recycling: rotate the oldest watch
            // out. Its buffer is simply freed by its last consumer
            // instead of recycled — correctness is unaffected.
            self.retired.remove(0);
        }
        self.retired.push(chunk.clone());
        chunk
    }

    /// Stages one message via `write`, seals, and returns exactly that
    /// message's bytes. Convenience for owners that emit one message
    /// at a time; note the seal covers *everything* staged, so don't
    /// interleave this with an open [`EncodeArena::mark`] batch.
    pub fn encode_with(&mut self, write: impl FnOnce(&mut Vec<u8>)) -> Bytes {
        let mark = self.mark();
        write(&mut self.open);
        let chunk = self.seal();
        if mark == 0 {
            chunk
        } else {
            chunk.slice(mark..)
        }
    }

    /// Moves retired chunks whose consumers have all dropped their
    /// slices back onto the free list.
    fn reclaim(&mut self) {
        let mut i = 0;
        while i < self.retired.len() {
            if Arc::strong_count(&self.retired[i].data) == 1 {
                let chunk = self.retired.swap_remove(i);
                if self.free.len() < FREE_CAP {
                    if let Ok(mut vec) = Arc::try_unwrap(chunk.data) {
                        vec.clear();
                        self.free.push(vec);
                    }
                }
            } else {
                i += 1;
            }
        }
    }

    /// Buffers currently available for reuse (test/telemetry hook).
    pub fn free_buffers(&self) -> usize {
        self.free.len()
    }

    /// Sealed chunks still watched for reclamation (test/telemetry
    /// hook).
    pub fn retired_chunks(&self) -> usize {
        self.retired.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BufMut;

    #[test]
    fn seal_returns_staged_bytes_and_slices_share() {
        let mut arena = EncodeArena::new();
        let a = arena.mark();
        arena.buf().put_slice(b"alpha");
        let a_end = arena.len();
        let b = arena.mark();
        arena.buf().put_u16(0xbeef);
        let b_end = arena.len();
        let chunk = arena.seal();
        assert_eq!(&chunk.slice(a..a_end)[..], b"alpha");
        assert_eq!(&chunk.slice(b..b_end)[..], &[0xbe, 0xef]);
        assert_eq!(chunk.len(), 7);
        // The slices share the chunk's allocation.
        assert_eq!(chunk.slice(a..a_end).as_ptr(), chunk.as_ptr());
    }

    #[test]
    fn empty_seal_is_free_and_truncate_aborts() {
        let mut arena = EncodeArena::new();
        assert!(arena.seal().is_empty());
        let m = arena.mark();
        arena.buf().put_slice(b"oops");
        arena.truncate(m);
        assert!(arena.is_empty());
        assert!(arena.seal().is_empty());
    }

    #[test]
    fn buffers_are_reclaimed_once_consumers_drop() {
        let mut arena = EncodeArena::new();
        let chunk = arena.encode_with(|b| b.put_slice(b"recycle-me"));
        assert_eq!(&chunk[..], b"recycle-me");
        assert_eq!(arena.retired_chunks(), 1);
        drop(chunk);
        // Next seal sweeps the retired ring and reuses the buffer.
        let chunk2 = arena.encode_with(|b| b.put_slice(b"warm"));
        assert_eq!(&chunk2[..], b"warm");
        assert!(arena.free_buffers() <= FREE_CAP);
        drop(chunk2);
        let before = telemetry::allocs_saved();
        let chunk3 = arena.encode_with(|b| b.put_slice(b"warm2"));
        // Single message on a recycled buffer: 2 legacy allocs vs 1
        // Arc — one allocation saved.
        assert_eq!(telemetry::allocs_saved(), before + 1);
        drop(chunk3);
    }

    /// Long-lived consumers (a memo cache holding chunk slices as
    /// keys) must not wedge the retired ring: once it is full, the
    /// oldest watch rotates out and fresh short-lived chunks keep
    /// getting reclaimed.
    #[test]
    fn pinned_chunks_do_not_block_recycling() {
        let mut arena = EncodeArena::new();
        let pinned: Vec<Bytes> = (0..RETIRED_CAP)
            .map(|i| arena.encode_with(|b| b.put_slice(&[i as u8; 16])))
            .collect();
        assert_eq!(arena.retired_chunks(), RETIRED_CAP);
        // A short-lived chunk sealed while the ring is saturated…
        drop(arena.encode_with(|b| b.put_slice(b"ephemeral")));
        // …is still watched (the oldest pinned chunk rotated out), so
        // the next seal reclaims its buffer and reuses it as the open
        // chunk right away.
        drop(arena.encode_with(|b| b.put_slice(b"ephemeral2")));
        let before = telemetry::allocs_saved();
        drop(arena.encode_with(|b| b.put_slice(b"ephemeral3")));
        // Recycled buffer: 2 legacy allocs vs 1 Arc — one saved. A
        // wedged ring would have spent a fresh buffer (0 saved).
        assert_eq!(
            telemetry::allocs_saved(),
            before + 1,
            "short-lived chunks must keep recycling past a pinned ring"
        );
        drop(pinned);
    }

    #[test]
    fn telemetry_counts_sealed_bytes_and_batch_savings() {
        let mut arena = EncodeArena::new();
        let bytes_before = telemetry::arena_bytes();
        let allocs_before = telemetry::allocs_saved();
        for _ in 0..3 {
            arena.mark();
            arena.buf().put_slice(&[7u8; 10]);
        }
        let chunk = arena.seal();
        assert_eq!(chunk.len(), 30);
        assert_eq!(telemetry::arena_bytes(), bytes_before + 30);
        // 3 messages: legacy 6 allocs, arena spent 2 (cold buffer +
        // Arc) → 4 saved.
        assert_eq!(telemetry::allocs_saved(), allocs_before + 4);
    }

    #[test]
    fn encode_with_isolates_message_even_after_prior_seal() {
        let mut arena = EncodeArena::new();
        let first = arena.encode_with(|b| b.put_slice(b"one"));
        let second = arena.encode_with(|b| b.put_slice(b"two"));
        assert_eq!(&first[..], b"one");
        assert_eq!(&second[..], b"two");
    }
}
