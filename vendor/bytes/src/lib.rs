//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no access to crates.io, so the API subset
//! the workspace uses is implemented here: [`Bytes`] (a cheaply
//! cloneable, sliceable, immutable byte buffer over `Arc<Vec<u8>>`),
//! [`BytesMut`] (a growable builder), and the [`Buf`]/[`BufMut`]
//! cursor traits for the big-endian wire codecs.
//!
//! # Zero-copy construction
//!
//! The backing store is `Arc<Vec<u8>>` rather than `Arc<[u8]>` so that
//! [`From<Vec<u8>>`] — and therefore [`BytesMut::freeze`], which every
//! wire encoder in the workspace ends with — *moves* the buffer into
//! the shared allocation instead of copying it (`Arc<[u8]>::from`
//! cannot adopt a `Box<[u8]>` allocation and memcpys). Clones and
//! slices were always reference bumps; with this layout the only
//! copying constructors left are [`Bytes::copy_from_slice`] and
//! [`Bytes::from_static`], and the [`telemetry`] module counts every
//! byte they copy so hot paths that still materialize buffers are
//! visible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

pub mod arena;

pub mod telemetry {
    //! Thread-local accounting of payload bytes *copied* into new
    //! [`Bytes`](super::Bytes) allocations (zero-copy constructions —
    //! clone, slice, `From<Vec<u8>>`, `freeze` — count nothing).

    use std::cell::Cell;

    thread_local! {
        static COPIED: Cell<u64> = const { Cell::new(0) };
        static SAVED: Cell<u64> = const { Cell::new(0) };
        static ALLOCS_SAVED: Cell<u64> = const { Cell::new(0) };
        static ARENA_BYTES: Cell<u64> = const { Cell::new(0) };
    }

    pub(crate) fn count_copied(bytes: usize) {
        COPIED.with(|c| c.set(c.get() + bytes as u64));
    }

    /// Total bytes this thread has copied into fresh `Bytes`
    /// allocations since it started. Monotone; subtract two readings
    /// to attribute copies to an interval.
    pub fn bytes_copied() -> u64 {
        COPIED.with(Cell::get)
    }

    /// Records `bytes` of copying *avoided* at a call site that used to
    /// materialise an owned buffer and now passes a zero-copy handle.
    /// Instrumented call sites declare the saving explicitly; nothing
    /// is counted automatically.
    pub fn count_saved(bytes: usize) {
        SAVED.with(|c| c.set(c.get() + bytes as u64));
    }

    /// Total bytes of copying this thread has avoided (per
    /// [`count_saved`]). Monotone, like [`bytes_copied`].
    pub fn bytes_saved() -> u64 {
        SAVED.with(Cell::get)
    }

    /// Records `count` heap allocations *avoided* at a call site that
    /// used to allocate per message and now reuses pooled storage (an
    /// [`arena`](super::arena) chunk, a borrowed view, a recycled
    /// scratch vector). As with [`count_saved`], instrumented call
    /// sites declare the saving explicitly.
    pub fn count_allocs_saved(count: usize) {
        ALLOCS_SAVED.with(|c| c.set(c.get() + count as u64));
    }

    /// Total heap allocations this thread has avoided (per
    /// [`count_allocs_saved`]). Monotone, like [`bytes_copied`].
    pub fn allocs_saved() -> u64 {
        ALLOCS_SAVED.with(Cell::get)
    }

    pub(crate) fn count_arena_bytes(bytes: usize) {
        ARENA_BYTES.with(|c| c.set(c.get() + bytes as u64));
    }

    /// Total bytes sealed out of [`arena::EncodeArena`](super::arena)
    /// chunks on this thread. Monotone, like [`bytes_copied`].
    pub fn arena_bytes() -> u64 {
        ARENA_BYTES.with(Cell::get)
    }
}

/// A cheaply cloneable immutable byte buffer.
///
/// Clones and [`Bytes::slice`] share the underlying allocation.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Bytes {
        Bytes {
            data: Arc::new(Vec::new()),
            start: 0,
            end: 0,
        }
    }

    /// Wraps a static byte slice without copying.
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        // A stub cannot hold `&'static` without unsafe; one copy into a
        // shared allocation preserves semantics.
        Bytes::copy_from_slice(bytes)
    }

    /// Copies `data` into a new shared allocation.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        telemetry::count_copied(data.len());
        let end = data.len();
        Bytes {
            data: Arc::new(data.to_vec()),
            start: 0,
            end,
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a sub-buffer sharing the same allocation.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let start = match range.start_bound() {
            Bound::Included(&s) => s,
            Bound::Excluded(&s) => s + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&e) => e + 1,
            Bound::Excluded(&e) => e,
            Bound::Unbounded => self.len(),
        };
        assert!(start <= end && end <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + start,
            end: self.start + end,
        }
    }

    /// Splits off and returns the bytes from `at` onward, truncating
    /// `self` to `[0, at)`. Both halves share the allocation.
    ///
    /// # Panics
    ///
    /// Panics if `at > len`.
    pub fn split_off(&mut self, at: usize) -> Bytes {
        let tail = self.slice(at..);
        self.end = self.start + at;
        tail
    }

    /// Splits off and returns the first `at` bytes, advancing `self`
    /// past them. Both halves share the allocation.
    ///
    /// # Panics
    ///
    /// Panics if `at > len`.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        let head = self.slice(..at);
        self.start += at;
        head
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

/// `Borrow<[u8]>` lets hash maps keyed by `Bytes` be probed with a
/// plain `&[u8]` — no owned copy needed for the lookup. Sound because
/// `Eq`, `Ord`, and `Hash` all operate on the viewed slice (see the
/// impls above), exactly as `[u8]`'s own do.
impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        // Zero-copy: the vector is moved into the shared allocation.
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Bytes {
        Bytes::from_static(v)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self[..] == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        &self[..] == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self[..] == other[..]
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self[..].hash(state)
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Lexicographic over the viewed slice, consistent with `Eq`/`Hash`
/// (and with `Vec<u8>`/`&[u8]` ordering), so `Bytes` can key ordered
/// maps such as `MemoCache`.
impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self[..].cmp(&other[..])
    }
}

fn fmt_escaped(bytes: &[u8], f: &mut fmt::Formatter<'_>) -> fmt::Result {
    write!(f, "b\"")?;
    for &b in bytes {
        for esc in std::ascii::escape_default(b) {
            write!(f, "{}", esc as char)?;
        }
    }
    write!(f, "\"")
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_escaped(self, f)
    }
}

/// A growable byte buffer used to build frames before freezing.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty builder.
    pub fn new() -> BytesMut {
        BytesMut { buf: Vec::new() }
    }

    /// Creates an empty builder with `cap` bytes pre-allocated.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends `data`.
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Resizes to `new_len`, filling any growth with `value`.
    pub fn resize(&mut self, new_len: usize, value: u8) {
        self.buf.resize(new_len, value);
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_escaped(self, f)
    }
}

/// Read cursor over a byte source; integers are big-endian, matching
/// the real `bytes` crate.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Advances the cursor by `cnt` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `cnt > remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    ///
    /// # Panics
    ///
    /// Panics if the source is exhausted.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a big-endian `u16`.
    ///
    /// # Panics
    ///
    /// Panics on fewer than 2 remaining bytes.
    fn get_u16(&mut self) -> u16 {
        let v = u16::from_be_bytes(self.chunk()[..2].try_into().expect("2 bytes"));
        self.advance(2);
        v
    }

    /// Reads a big-endian `u32`.
    ///
    /// # Panics
    ///
    /// Panics on fewer than 4 remaining bytes.
    fn get_u32(&mut self) -> u32 {
        let v = u32::from_be_bytes(self.chunk()[..4].try_into().expect("4 bytes"));
        self.advance(4);
        v
    }

    /// Reads a big-endian `u64`.
    ///
    /// # Panics
    ///
    /// Panics on fewer than 8 remaining bytes.
    fn get_u64(&mut self) -> u64 {
        let v = u64::from_be_bytes(self.chunk()[..8].try_into().expect("8 bytes"));
        self.advance(8);
        v
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.start += cnt;
    }
}

/// Write cursor; integers are big-endian, matching the real `bytes`
/// crate.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, data: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, data: &[u8]) {
        self.extend_from_slice(data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_and_split_share_and_bound() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        let tail = s.slice(2..);
        assert_eq!(&tail[..], &[4]);
        let mut whole = b.clone();
        let back = whole.split_off(3);
        assert_eq!(&whole[..], &[1, 2, 3]);
        assert_eq!(&back[..], &[4, 5]);
        let mut rest = b.clone();
        let head = rest.split_to(2);
        assert_eq!(&head[..], &[1, 2]);
        assert_eq!(&rest[..], &[3, 4, 5]);
    }

    #[test]
    fn codec_round_trip_big_endian() {
        let mut w = BytesMut::with_capacity(32);
        w.put_u8(7);
        w.put_u16(0x0102);
        w.put_u32(0x0304_0506);
        w.put_u64(0x0708_090a_0b0c_0d0e);
        w.put_slice(b"xy");
        let frozen = w.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16(), 0x0102);
        assert_eq!(r.get_u32(), 0x0304_0506);
        assert_eq!(r.get_u64(), 0x0708_090a_0b0c_0d0e);
        assert_eq!(r, b"xy");
        let mut cursor = frozen.clone();
        cursor.advance(1);
        // Next two bytes after the skipped u8 are the u16 payload.
        assert_eq!(cursor.get_u16(), 0x0102);
    }

    #[test]
    fn equality_and_empty() {
        assert_eq!(Bytes::new().len(), 0);
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::from_static(b"abc"), Bytes::from(b"abc".to_vec()));
        assert_eq!(Bytes::from_static(b"abc"), b"abc"[..]);
    }

    #[test]
    fn from_vec_freeze_and_clone_are_zero_copy() {
        let v = vec![1u8, 2, 3, 4];
        let addr = v.as_ptr();
        let before = telemetry::bytes_copied();
        let b = Bytes::from(v);
        assert_eq!(b.as_ptr(), addr, "From<Vec> must adopt the allocation");
        let c = b.clone();
        assert_eq!(c.as_ptr(), addr, "clone shares the allocation");
        assert_eq!(b.slice(1..3).as_ptr(), addr.wrapping_add(1));
        let mut w = BytesMut::with_capacity(4);
        w.put_slice(b"wxyz");
        let frozen = w.freeze();
        assert_eq!(&frozen[..], b"wxyz");
        assert_eq!(
            telemetry::bytes_copied(),
            before,
            "no Bytes-materializing copies happened"
        );
        let copied = Bytes::copy_from_slice(b"abc");
        assert_eq!(telemetry::bytes_copied(), before + 3);
        assert_ne!(copied.as_ptr(), addr);
    }
}
