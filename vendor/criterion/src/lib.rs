//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so the benchmark
//! API subset this workspace uses is implemented here: [`Criterion`],
//! benchmark groups, [`Bencher::iter`]/[`Bencher::iter_custom`]/
//! [`Bencher::iter_batched`], [`BenchmarkId`], [`Throughput`], and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Statistics are intentionally simple — each benchmark runs a short
//! warm-up, then `sample_size` timed samples, and prints
//! min / mean / max per iteration. That is enough for the repo's
//! before/after comparisons; it does not attempt criterion's bootstrap
//! analysis or HTML reports. For the table benches, which report
//! **simulated** latency through `iter_custom`, the printed numbers are
//! simulated milliseconds, exactly as with real criterion.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

/// Re-export of a compiler fence against optimizing away bench bodies.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How much input `iter_batched` setup produces per batch (ignored by
/// this stub; batches are always one input).
#[derive(Clone, Copy, Debug, Eq, PartialEq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
}

/// Throughput annotation for a benchmark (printed alongside timings).
#[derive(Clone, Copy, Debug, Eq, PartialEq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A two-part benchmark identifier (`function/parameter`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Creates an id rendered as `function/parameter`.
    pub fn new(function: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{function}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    /// Duration of one measured sample (total / iterations).
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, amortizing over an automatically chosen
    /// iteration count.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Calibrate: grow iteration count until one batch takes ≥ ~5 ms.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(5) || iters >= 1 << 20 {
                break;
            }
            iters *= 2;
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters as u32);
        }
    }

    /// Times with a caller-supplied measurement: `routine` receives an
    /// iteration count and returns the total (possibly simulated)
    /// duration for that many iterations.
    pub fn iter_custom(&mut self, mut routine: impl FnMut(u64) -> Duration) {
        for _ in 0..self.sample_size {
            let iters = 1u64;
            let total = routine(iters);
            self.samples.push(total / iters as u32);
        }
    }

    /// Times `routine` on fresh inputs from `setup`, excluding setup
    /// time from the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

fn human(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", d.as_secs_f64() * 1e3)
    } else if ns >= 1_000 {
        format!("{:.3} µs", d.as_secs_f64() * 1e6)
    } else {
        format!("{ns} ns")
    }
}

fn run_one(name: &str, sample_size: usize, throughput: Option<Throughput>, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size: sample_size.max(1),
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{name:<50} (no samples)");
        return;
    }
    let min = b.samples.iter().min().copied().unwrap_or_default();
    let max = b.samples.iter().max().copied().unwrap_or_default();
    let mean = b.samples.iter().sum::<Duration>() / b.samples.len() as u32;
    let tp = match throughput {
        Some(Throughput::Bytes(n)) => {
            let secs = mean.as_secs_f64();
            if secs > 0.0 {
                format!("  {:.1} MiB/s", n as f64 / secs / (1024.0 * 1024.0))
            } else {
                String::new()
            }
        }
        Some(Throughput::Elements(n)) => {
            let secs = mean.as_secs_f64();
            if secs > 0.0 {
                format!("  {:.0} elem/s", n as f64 / secs)
            } else {
                String::new()
            }
        }
        None => String::new(),
    };
    println!(
        "{name:<50} [{} {} {}]{tp}",
        human(min),
        human(mean),
        human(max)
    );
}

/// A named set of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Sets the target measurement time (accepted for API
    /// compatibility; this stub sizes work by `sample_size` only).
    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            self.throughput,
            f,
        );
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.effective_sample_size();
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size,
            throughput: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        let sample_size = self.effective_sample_size();
        run_one(&id.to_string(), sample_size, None, f);
        self
    }

    fn effective_sample_size(&self) -> usize {
        if self.sample_size == 0 {
            10
        } else {
            self.sample_size
        }
    }
}

/// Declares a benchmark group function running each listed benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main`, running each listed benchmark group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_and_custom_and_batched_produce_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.throughput(Throughput::Bytes(64));
        group.bench_function("iter", |b| b.iter(|| black_box(1 + 1)));
        group.bench_function(BenchmarkId::new("custom", 7), |b| {
            b.iter_custom(|iters| Duration::from_micros(iters))
        });
        group.bench_function("batched", |b| {
            b.iter_batched(|| 21, |x| x * 2, BatchSize::SmallInput)
        });
        group.finish();
        c.bench_function("standalone", |b| b.iter_custom(|_| Duration::from_nanos(10)));
    }
}
