//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this reproduction has no access to
//! crates.io, so the small API subset the workspace actually uses is
//! implemented here: [`RngCore`], [`Rng`], [`SeedableRng`], and
//! [`rngs::StdRng`]. The generator is deterministic given its seed
//! (xoshiro256**, seeded through SplitMix64), which is exactly what the
//! simulator's reproducibility invariant requires — no OS entropy is
//! ever consulted.
//!
//! The numeric streams differ from the real `rand::rngs::StdRng`
//! (ChaCha12), so absolute simulated latencies shifted once when the
//! workspace moved onto this stub; all determinism and statistical
//! properties are preserved.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

/// Error type for fallible RNG operations (infallible here; exists for
/// API compatibility with `rand::Error`).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("rng failure (unreachable for deterministic rngs)")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator: raw word and byte output.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible variant of [`RngCore::fill_bytes`].
    ///
    /// # Errors
    ///
    /// Never fails for the deterministic generators in this crate;
    /// implementors may return [`Error`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly from an [`RngCore`] via
/// [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + (uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        // Uniform in [start, end): scale a 53-bit mantissa draw. The
        // result is a pure function of the RNG stream — no platform
        // floating-point variance (IEEE 754 ops are exact per input).
        self.start + (self.end - self.start) * <f64 as Standard>::sample(rng)
    }
}

/// Unbiased uniform draw in `[0, span)` by rejection sampling.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

/// Convenience sampling methods layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of [0, 1]");
        if p >= 1.0 {
            return true;
        }
        <f64 as Standard>::sample(self) < p
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator
    /// (xoshiro256**, seeded via SplitMix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            // xoshiro256** by Blackman & Vigna (public domain).
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            let mut chunks = dest.chunks_exact_mut(8);
            for chunk in &mut chunks {
                chunk.copy_from_slice(&self.next_u64().to_le_bytes());
            }
            let rem = chunks.into_remainder();
            if !rem.is_empty() {
                let bytes = self.next_u64().to_le_bytes();
                rem.copy_from_slice(&bytes[..rem.len()]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_bool_edges_and_rate() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits={hits}");
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1_000 {
            let v: u64 = rng.gen_range(10..20u64);
            assert!((10..20).contains(&v));
            let w: usize = rng.gen_range(0..=3usize);
            assert!(w <= 3);
        }
        // Inclusive range of size 1 must be constant.
        assert_eq!(rng.gen_range(5..=5u32), 5);
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
        let mut dyn_rng: &mut dyn RngCore = &mut rng;
        let mut buf2 = [0u8; 4];
        dyn_rng.try_fill_bytes(&mut buf2).expect("infallible");
    }
}
