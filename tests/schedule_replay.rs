//! Replays every checked-in schedule fixture (`tests/fixtures/*.schedule`)
//! and asserts the outcome recorded on its `expect` line.
//!
//! Fixtures come from two sources: shrunk counterexamples produced by
//! the `turquois-check` explorer (minimal schedules that once violated
//! a property — under the `quorum-mutation` bug plant they still do),
//! and hand-written "interesting" schedules documenting the replay
//! format. This test runs WITHOUT the mutation feature, so the
//! counterexample fixtures must replay clean: the real protocol
//! survives the exact schedule that breaks the weakened quorum.

use std::path::PathBuf;
use turquois_check::drive::run_schedule;
use turquois_check::replay::{parse, to_text, Expectation};

fn fixture_paths() -> Vec<PathBuf> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let mut paths: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("tests/fixtures exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "schedule"))
        .collect();
    paths.sort();
    assert!(!paths.is_empty(), "no .schedule fixtures in {}", dir.display());
    paths
}

#[test]
fn fixtures_replay_to_their_recorded_expectation() {
    for path in fixture_paths() {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let text = std::fs::read_to_string(&path).expect("readable fixture");
        let (schedule, expect) = parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        let report = run_schedule(&schedule);
        match expect {
            Expectation::Clean => {
                assert!(
                    report.violation.is_none(),
                    "{name}: expected clean, got {}",
                    report.violation.unwrap()
                );
                // Clean fixtures additionally pin decision coverage:
                // every correct process decided within max_rounds.
                for id in (0..schedule.n).filter(|&id| !schedule.is_byz(id)) {
                    assert!(
                        report.decisions[id].is_some(),
                        "{name}: p{id} undecided after {} rounds",
                        report.rounds_used
                    );
                }
            }
            Expectation::Violation(kind) => {
                let v = report
                    .violation
                    .unwrap_or_else(|| panic!("{name}: expected a {kind} violation, ran clean"));
                assert_eq!(v.kind(), kind, "{name}: wrong violation kind: {v}");
            }
        }
    }
}

/// Fixtures must stay in canonical form: stripping comments, the body
/// is exactly what `to_text` renders, so `parse ∘ to_text` is the
/// identity and diffs against regenerated fixtures are clean.
#[test]
fn fixtures_are_canonical() {
    for path in fixture_paths() {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let text = std::fs::read_to_string(&path).expect("readable fixture");
        let (schedule, expect) = parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        let canonical = to_text(&schedule, expect, &[]);
        let body: String = text
            .lines()
            .map(|l| l.split('#').next().unwrap_or("").trim_end())
            .filter(|l| !l.trim().is_empty())
            .map(|l| format!("{l}\n"))
            .collect();
        assert_eq!(body, canonical, "{name}: fixture body is not canonical");
    }
}
