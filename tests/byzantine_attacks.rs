//! Integration: adversarial behaviour beyond the standard fault loads —
//! forged signatures, replayed statuses, fabricated justifications.

use turquois::core::config::Config;
use turquois::core::instance::{MessageOutcome, Turquois};
use turquois::core::message::{Envelope, Message, Status};
use turquois::core::{KeyRing, Value};
use turquois::crypto::otss::OneTimeSignature;

const PHASES: usize = 60;

fn make_group(n: usize, proposal: bool, seed: u64) -> Vec<Turquois> {
    let cfg = Config::evaluation(n).expect("valid n");
    KeyRing::trusted_setup(n, PHASES, seed)
        .into_iter()
        .enumerate()
        .map(|(i, ring)| Turquois::new(cfg, i, proposal, ring, seed + i as u64))
        .collect()
}

/// Runs lossless synchronous rounds until everyone decides.
fn run_to_decision(procs: &mut [Turquois]) {
    for _ in 0..30 {
        let msgs: Vec<_> = procs
            .iter_mut()
            .map(|p| p.on_tick().expect("keys cover phase").bytes)
            .collect();
        for p in procs.iter_mut() {
            for m in &msgs {
                p.on_message(m);
            }
        }
        if procs.iter().all(|p| p.decision().is_some()) {
            return;
        }
    }
    panic!("no decision in 30 synchronous rounds");
}

#[test]
fn forged_one_time_signature_rejected() {
    let mut procs = make_group(4, true, 1);
    // Attacker fabricates a message from process 3 with a random
    // "signature".
    let forged = Message::bare(
        Envelope {
            sender: 3,
            phase: 1,
            value: Value::Zero,
            coin_flip: false,
            status: Status::Undecided,
        },
        OneTimeSignature([0xEE; 32]),
    );
    let receipt = procs[0].on_message(&forged.encode());
    assert_eq!(receipt.outcome, MessageOutcome::AuthFailed);
}

#[test]
fn signature_replay_under_other_value_rejected() {
    let mut procs = make_group(4, true, 2);
    let genuine = procs[1].on_tick().expect("keys cover phase");
    // Attacker reuses process 1's phase-1 signature for the opposite
    // value.
    let mut flipped = genuine.message.clone();
    flipped.envelope.value = flipped.envelope.value.flipped();
    let receipt = procs[0].on_message(&flipped.encode());
    assert_eq!(receipt.outcome, MessageOutcome::AuthFailed);
}

#[test]
fn status_replay_cannot_fake_a_decision() {
    // The §6.1 caveat: status is NOT covered by the one-time signature,
    // so an attacker can replay a genuine message with the status bit
    // flipped. The semantic validation must reject the fake `decided`.
    let mut procs = make_group(4, true, 3);
    let genuine = procs[1].on_tick().expect("keys cover phase");
    let mut replayed = genuine.message.clone();
    replayed.envelope.status = Status::Decided;
    let receipt = procs[0].on_message(&replayed.encode());
    assert!(
        matches!(receipt.outcome, MessageOutcome::SemanticFailed(_)),
        "got {:?}",
        receipt.outcome
    );
    assert_eq!(procs[0].decision(), None);
}

#[test]
fn status_replay_after_real_decision_is_harmless() {
    // Once a genuine decision exists, a replayed `decided` message is
    // semantically justified — and changes nothing (decisions are
    // write-once and the replay carries the same value).
    let mut procs = make_group(4, true, 4);
    run_to_decision(&mut procs);
    assert!(procs.iter().all(|p| p.decision() == Some(true)));
    let out = procs[1].on_tick().expect("keys cover phase");
    let mut replay = out.message.clone();
    replay.envelope.status = Status::Decided; // already decided; keep it
    let before = procs[0].decision();
    procs[0].on_message(&replay.encode());
    assert_eq!(procs[0].decision(), before);
}

#[test]
fn fabricated_justification_of_byzantine_only_messages_fails() {
    // A Byzantine process (id 3) signs phase-1 messages for value 0 and
    // attaches them as "justification" for a phase-2 lock on 0, while
    // every correct process proposed 1. The half-quorum can never be
    // met by f = 1 senders.
    let cfg = Config::evaluation(4).expect("valid");
    let rings = KeyRing::trusted_setup(4, PHASES, 5);
    let mut rings: Vec<KeyRing> = rings;
    let evil_ring = rings.pop().expect("ring 3");
    let mut p0 = Turquois::new(cfg, 0, true, rings.remove(0), 11);

    let evil_pv1 = evil_ring.sign(1, Value::Zero).expect("in range");
    let evil_pv2 = evil_ring.sign(2, Value::Zero).expect("in range");
    let lie = Message {
        envelope: Envelope {
            sender: 3,
            phase: 2,
            value: Value::Zero,
            coin_flip: false,
            status: Status::Undecided,
        },
        signature: evil_pv2,
        justification: vec![(
            Envelope {
                sender: 3,
                phase: 1,
                value: Value::Zero,
                coin_flip: false,
                status: Status::Undecided,
            },
            evil_pv1,
        )],
    };
    let receipt = p0.on_message(&lie.encode());
    assert!(
        matches!(receipt.outcome, MessageOutcome::SemanticFailed(_)),
        "got {:?}",
        receipt.outcome
    );
}

#[test]
fn equivocation_does_not_double_count() {
    // Process 3 equivocates at phase 1 (signs both values). Process 0
    // accepts both messages but the sender still counts once toward the
    // phase quorum: with only senders {0, 3} present the quorum (3 of
    // n=4, f=1) is not met.
    let cfg = Config::evaluation(4).expect("valid");
    let rings = KeyRing::trusted_setup(4, PHASES, 6);
    let mut rings: Vec<KeyRing> = rings;
    let evil_ring = rings.pop().expect("ring 3");
    let mut p0 = Turquois::new(cfg, 0, true, rings.remove(0), 13);

    let own = p0.on_tick().expect("keys cover phase");
    p0.on_message(&own.bytes); // loopback: sender counts itself

    for value in [Value::Zero, Value::One] {
        let sig = evil_ring.sign(1, value).expect("in range");
        let msg = Message::bare(
            Envelope {
                sender: 3,
                phase: 1,
                value,
                coin_flip: false,
                status: Status::Undecided,
            },
            sig,
        );
        let receipt = p0.on_message(&msg.encode());
        assert_eq!(receipt.outcome, MessageOutcome::Accepted);
        assert!(!receipt.phase_advanced, "two senders are not a quorum");
    }
    assert_eq!(p0.phase(), 1);
}

#[test]
fn byzantine_cannot_flip_unanimous_outcome_end_to_end() {
    // Full-stack check through the simulator for every group size: with
    // all correct processes proposing `false` and f value-flipping
    // Byzantine nodes, the decision must be `false`.
    use turquois::harness::{FaultLoad, Protocol, ProposalDistribution, Scenario};
    for n in [4usize, 7, 10] {
        let outcome = Scenario::new(Protocol::Turquois, n)
            .proposals(ProposalDistribution::Unanimous)
            .fault_load(FaultLoad::Byzantine)
            .seed(n as u64)
            .run_once()
            .expect("valid scenario");
        assert!(outcome.k_reached(), "n={n}");
        for i in 0..n {
            if !outcome.faulty[i] {
                if let Some(d) = outcome.decisions[i] {
                    assert!(d.value, "n={n}: validity requires deciding the unanimous value");
                }
            }
        }
    }
}

#[test]
fn baselines_survive_byzantine_load_across_seeds() {
    // Full-stack seed sweep for the two baselines under the §7.2
    // Byzantine load: Bracha's flipped frames are absorbed by echo/ready
    // amplification, ABBA's signed lies by the justification chain. For
    // every seed the run must reach k decisions, the decided correct
    // processes must agree, and a unanimous run must decide the
    // unanimous value. (The Turquois counterpart is the table test
    // above; the schedule explorer in `turquois-check` covers all three
    // engines sans simulator.)
    use turquois::harness::{FaultLoad, Protocol, ProposalDistribution, Scenario};
    for protocol in [Protocol::Bracha, Protocol::Abba] {
        for dist in [ProposalDistribution::Unanimous, ProposalDistribution::Divergent] {
            for seed in 0..8u64 {
                let outcome = Scenario::new(protocol, 4)
                    .proposals(dist)
                    .fault_load(FaultLoad::Byzantine)
                    .seed(seed)
                    .run_once()
                    .expect("valid scenario");
                let label = format!("{} {} seed {seed}", protocol.name(), dist.name());
                assert!(outcome.k_reached(), "{label}: k not reached");
                let decided: Vec<bool> = outcome
                    .correct()
                    .filter_map(|i| outcome.decisions[i].map(|d| d.value))
                    .collect();
                assert!(!decided.is_empty(), "{label}: no correct process decided");
                assert!(
                    decided.iter().all(|&d| d == decided[0]),
                    "{label}: agreement broken: {decided:?}"
                );
                if matches!(dist, ProposalDistribution::Unanimous) {
                    assert!(decided[0], "{label}: validity requires the unanimous value");
                }
            }
        }
    }
}

#[test]
fn corrupted_wire_bytes_never_panic() {
    let mut procs = make_group(4, true, 7);
    let genuine = procs[1].on_tick().expect("keys cover phase").bytes;
    // Flip every single byte position and feed the result.
    for i in 0..genuine.len() {
        let mut corrupted = genuine.to_vec();
        corrupted[i] ^= 0xFF;
        let _ = procs[0].on_message(&corrupted);
    }
    // Truncate at every length.
    for len in 0..genuine.len() {
        let _ = procs[0].on_message(&genuine[..len]);
    }
    // The process remains functional.
    let receipt = procs[0].on_message(&genuine);
    assert!(matches!(
        receipt.outcome,
        MessageOutcome::Accepted | MessageOutcome::Duplicate
    ));
}
