//! Tier-1 guardrail for the parallel experiment runner: results and
//! rendered table bytes must be identical at any `TURQUOIS_THREADS`
//! count, and a safety violation raised on a worker thread must stay
//! exactly as loud as on the serial path.

use turquois_harness::experiment::{measure_on, paper_table_on, render_table};
use turquois_harness::runner;
use turquois_harness::{FaultLoad, Protocol, ProposalDistribution, Scenario};

/// The whole paper-table pipeline — (cell, rep) fan-out, per-cell
/// aggregation, rendering — is byte-identical at 1, 2, and 4 threads.
#[test]
fn paper_table_bytes_identical_across_thread_counts() {
    let sizes = [4usize];
    let reps = 2;
    let (serial_rows, _) = paper_table_on(FaultLoad::FailureFree, &sizes, reps, 1);
    let serial = render_table("determinism probe", &serial_rows);
    for threads in [2usize, 4] {
        let (rows, report) = paper_table_on(FaultLoad::FailureFree, &sizes, reps, threads);
        assert_eq!(report.jobs, sizes.len() * 6 * reps);
        let rendered = render_table("determinism probe", &rows);
        assert_eq!(serial, rendered, "rendered bytes diverged at threads={threads}");
        for (a, b) in serial_rows.iter().zip(&rows) {
            assert_eq!(a.n, b.n);
            for (ca, cb) in a.cells.iter().zip(&b.cells) {
                match (ca, cb) {
                    (Ok(x), Ok(y)) => assert_eq!(x, y, "threads={threads}"),
                    (Err(x), Err(y)) => assert_eq!(x, y, "threads={threads}"),
                    _ => panic!("cell ok/err kind diverged at threads={threads}"),
                }
            }
        }
    }
}

/// Single-cell measurement (stats, incomplete counts, frame means) is
/// identical across thread counts.
#[test]
fn measure_identical_across_thread_counts() {
    let scenario =
        Scenario::new(Protocol::Turquois, 4).proposals(ProposalDistribution::Divergent);
    let serial = measure_on(&scenario, 3, 1).expect("serial measurement succeeds");
    for threads in [2usize, 4] {
        let parallel = measure_on(&scenario, 3, threads).expect("parallel measurement succeeds");
        assert_eq!(serial, parallel, "threads={threads}");
    }
}

/// The experiment binaries assert agreement/validity inside the job
/// closure. Seed a violation into one job of a 4-worker pool and check
/// the panic reaches the driver — a safety regression must never be
/// swallowed by a worker thread.
#[test]
fn safety_violation_on_worker_thread_fails_loudly() {
    let jobs: Vec<usize> = (0..24).collect();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        runner::run_indexed(4, &jobs, |_, &rep| {
            let agreement_holds = rep != 13;
            assert!(agreement_holds, "agreement violated in repetition {rep}");
            rep
        })
    }));
    assert!(
        result.is_err(),
        "worker-thread safety violation must panic the driver"
    );
}
