//! Tier-1 guardrail for the run supervisor: graceful degradation must
//! be deterministic (a failing cell renders `FAILED(<reason>)` while
//! every sibling keeps its exact healthy-run bytes at any
//! `TURQUOIS_THREADS`), a stalled run must surface a populated
//! [`StallReport`], and a crash-then-rejoin schedule must not stop the
//! rest of the group from deciding.

use std::time::Duration;
use turquois_harness::experiment::{
    paper_table_supervised_on, render_table, DEFAULT_TIME_LIMIT,
};
use turquois_harness::{FaultLoad, LossSpec, Protocol, ProposalDistribution, Scenario};
use wireless_net::CrashSchedule;

/// A sabotaged (deterministically panicking) job degrades exactly one
/// cell to `FAILED(panic)`; every other cell — and the rendered bytes —
/// are identical to the clean run, at 1 and 4 threads alike.
#[test]
fn sabotaged_supervised_table_degrades_gracefully_and_deterministically() {
    let sizes = [4usize];
    let reps = 2;
    let (clean_rows, clean_health, _) = paper_table_supervised_on(
        FaultLoad::FailureFree,
        &sizes,
        reps,
        1,
        DEFAULT_TIME_LIMIT,
        None,
    );
    assert!(clean_health.ok(), "clean run must be healthy");

    let mut renders = Vec::new();
    for threads in [1usize, 4] {
        let (rows, health, _) = paper_table_supervised_on(
            FaultLoad::FailureFree,
            &sizes,
            reps,
            threads,
            DEFAULT_TIME_LIMIT,
            Some((2, 1)),
        );
        assert!(!health.ok(), "sabotage must be reported (threads={threads})");
        assert_eq!(health.failures.len(), 1);
        assert_eq!(health.failures[0].reason, "panic");
        assert_eq!(rows[0].cells[2], Err("FAILED(panic)".to_string()));
        for (i, (cell, clean)) in rows[0].cells.iter().zip(&clean_rows[0].cells).enumerate() {
            if i == 2 {
                continue;
            }
            assert_eq!(cell, clean, "sibling cell {i} diverged at threads={threads}");
        }
        renders.push(render_table("degradation probe", &rows));
    }
    assert_eq!(renders[0], renders[1], "rendered bytes diverged across thread counts");
    assert!(renders[0].contains("FAILED(panic)"));
}

/// A run that exhausts its simulated-time budget yields a
/// [`wireless_net::StallReport`] naming each node's protocol phase and
/// its transmit-queue drop count — the first diagnostic stop when runs
/// start timing out.
#[test]
fn forced_stall_produces_populated_stall_report() {
    // Omission budget 80 per 10 ms at n=10 kills every broadcast: the
    // σ-sweep's proven always-stall configuration.
    let outcome = Scenario::new(Protocol::Turquois, 10)
        .proposals(ProposalDistribution::Divergent)
        .loss(LossSpec::Budget {
            budget: 80,
            window_ms: 10,
        })
        .time_limit(Duration::from_millis(800))
        .seed(42)
        .run_once()
        .expect("valid scenario");
    assert!(outcome.agreement_holds() && outcome.validity_holds());
    assert!(!outcome.k_reached(), "the omission budget must stall the run");

    let stall = outcome.stall.expect("stalled run carries a report");
    assert_eq!(stall.nodes.len(), 10);
    assert_eq!(stall.decided, 0);
    assert!(
        stall.nodes.iter().all(|n| n.progress.is_some()),
        "every node reports its protocol phase"
    );
    assert!(
        stall.queue_drops > 0 && stall.nodes.iter().any(|n| n.queue_drops > 0),
        "queue-drop counters are populated: {stall}"
    );
    let text = stall.to_string();
    assert!(text.contains("phase"), "per-node phases rendered: {text}");
    assert!(text.contains("qdrops"), "per-node queue drops rendered: {text}");
    assert!(text.contains("budgeted omission"), "fault state rendered: {text}");
}

/// Crash a correct node mid-protocol at n=7 and let it rejoin with
/// reset engine state: the rest of the group must keep deciding, and
/// the rejoined node must catch up — all within the default budget.
#[test]
fn crash_then_rejoin_does_not_stop_the_group() {
    let outcome = Scenario::new(Protocol::Turquois, 7)
        .proposals(ProposalDistribution::Divergent)
        .crashes(
            CrashSchedule::new()
                .crash_at_phase(0, 3)
                .rejoin_after(Duration::from_millis(250)),
        )
        .seed(7)
        .run_once()
        .expect("valid scenario");
    assert!(outcome.agreement_holds(), "agreement across the crash");
    assert!(outcome.validity_holds(), "validity across the crash");
    assert!(
        outcome.stats.crash_drops > 0,
        "the crash visibly dropped traffic from the downed node"
    );
    assert!(
        outcome.k_reached(),
        "all correct nodes (incl. the rejoined one) decide: {}/{} decided, stall: {:?}",
        outcome.decided_correct(),
        outcome.k,
        outcome.stall.map(|s| s.to_string())
    );
}
