//! Integration: the communication failure model — safety under
//! unrestricted omissions, progress when the network behaves.

use std::time::Duration;
use turquois::harness::{FaultLoad, LossSpec, Protocol, ProposalDistribution, Scenario};

#[test]
fn turquois_survives_heavy_iid_loss() {
    for loss in [0.1, 0.25] {
        let outcome = Scenario::new(Protocol::Turquois, 7)
            .proposals(ProposalDistribution::Divergent)
            .loss(LossSpec::Iid(loss))
            .seed(17)
            .time_limit(Duration::from_secs(60))
            .run_once()
            .expect("valid scenario");
        assert!(outcome.agreement_holds() && outcome.validity_holds());
        assert!(
            outcome.k_reached(),
            "loss={loss}: {}/{} decided",
            outcome.decided_correct(),
            outcome.k
        );
        assert!(outcome.stats.fault_drops > 0, "loss must actually occur");
    }
}

#[test]
fn turquois_survives_bursty_loss() {
    let outcome = Scenario::new(Protocol::Turquois, 7)
        .loss(LossSpec::Burst(0.05, 0.2, 0.9))
        .seed(23)
        .time_limit(Duration::from_secs(60))
        .run_once()
        .expect("valid scenario");
    assert!(outcome.agreement_holds());
    assert!(outcome.k_reached());
}

#[test]
fn jamming_delays_but_never_breaks() {
    // The jam covers the whole failure-free decision window; progress
    // must resume afterwards with safety intact.
    let outcome = Scenario::new(Protocol::Turquois, 4)
        .loss(LossSpec::Jam {
            start_ms: 2,
            len_ms: 50,
        })
        .seed(5)
        .time_limit(Duration::from_secs(30))
        .run_once()
        .expect("valid scenario");
    assert!(outcome.agreement_holds() && outcome.validity_holds());
    assert!(outcome.k_reached());
    let max_ms = outcome
        .latencies_ms()
        .into_iter()
        .fold(0.0f64, f64::max);
    assert!(
        max_ms > 50.0,
        "decisions cannot complete during the jam window, got {max_ms}"
    );
}

#[test]
fn omission_adversary_within_sigma_cannot_stop_progress() {
    // n=10, k=7, t=0: σ = 20 omissions per round. A budgeted adversary
    // at half that budget merely slows things down.
    let outcome = Scenario::new(Protocol::Turquois, 10)
        .loss(LossSpec::Budget {
            budget: 10,
            window_ms: 10,
        })
        .seed(29)
        .time_limit(Duration::from_secs(60))
        .run_once()
        .expect("valid scenario");
    assert!(outcome.agreement_holds());
    assert!(outcome.k_reached());
}

#[test]
fn omission_adversary_above_sigma_preserves_safety() {
    // Way above σ: progress may stall within the time limit, but no two
    // correct processes may ever disagree and validity must hold.
    let outcome = Scenario::new(Protocol::Turquois, 10)
        .proposals(ProposalDistribution::Divergent)
        .loss(LossSpec::Budget {
            budget: 200,
            window_ms: 10,
        })
        .seed(31)
        .time_limit(Duration::from_secs(5))
        .run_once()
        .expect("valid scenario");
    assert!(outcome.agreement_holds(), "safety is unconditional");
    assert!(outcome.validity_holds());
}

#[test]
fn fail_stop_with_loss_is_slower_than_failure_free() {
    // §7.3: with exactly n−f live processes every message matters, so
    // loss hurts more. Compare means over several seeds at 10% loss.
    let mean = |fl: FaultLoad| -> f64 {
        let mut total = 0.0;
        let mut count = 0;
        for seed in 0..8u64 {
            let outcome = Scenario::new(Protocol::Turquois, 7)
                .fault_load(fl)
                .loss(LossSpec::Iid(0.10))
                .seed(seed * 101)
                .time_limit(Duration::from_secs(60))
                .run_once()
                .expect("valid scenario");
            assert!(outcome.agreement_holds());
            if let Some(m) = outcome.mean_latency_ms() {
                total += m;
                count += 1;
            }
        }
        total / count as f64
    };
    let ff = mean(FaultLoad::FailureFree);
    let fs = mean(FaultLoad::FailStop);
    assert!(
        fs > ff,
        "fail-stop ({fs:.1} ms) should exceed failure-free ({ff:.1} ms) under loss"
    );
}

#[test]
fn baselines_survive_loss_through_retransmission() {
    for protocol in [Protocol::Abba, Protocol::Bracha] {
        let outcome = Scenario::new(protocol, 4)
            .loss(LossSpec::Iid(0.15))
            .seed(37)
            .time_limit(Duration::from_secs(120))
            .run_once()
            .expect("valid scenario");
        assert!(outcome.agreement_holds(), "{}", protocol.name());
        assert!(outcome.k_reached(), "{}", protocol.name());
    }
}
