//! Integration: the live UDP runtime (real sockets, real threads).

use std::time::Duration;
use turquois::runtime::{Cluster, ClusterConfig};

#[test]
fn live_cluster_unanimous() {
    let decisions = Cluster::run(ClusterConfig {
        n: 4,
        proposals: vec![false; 4],
        seed: 11,
        timeout: Duration::from_secs(20),
        ..ClusterConfig::default()
    })
    .expect("cluster runs");
    assert!(decisions.iter().all(|d| *d == Some(false)), "{decisions:?}");
}

#[test]
fn live_cluster_divergent_with_loss() {
    let decisions = Cluster::run(ClusterConfig {
        n: 4,
        proposals: vec![true, false, true, false],
        seed: 12,
        loss: 0.1,
        timeout: Duration::from_secs(20),
        ..ClusterConfig::default()
    })
    .expect("cluster runs");
    let first = decisions[0].expect("decides");
    assert!(decisions.iter().all(|d| *d == Some(first)), "{decisions:?}");
}
