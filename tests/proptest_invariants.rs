//! Property-based tests over the protocol's core invariants.

use proptest::prelude::*;
use turquois::core::config::Config;
use turquois::core::instance::Turquois;
use turquois::core::message::{Envelope, Message, Status};
use turquois::core::{KeyRing, Value};
use turquois::crypto::otss::OneTimeSignature;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Zero),
        Just(Value::One),
        Just(Value::Bot)
    ]
}

fn arb_envelope(n: usize) -> impl Strategy<Value = Envelope> {
    (
        0..n,
        1u32..200,
        arb_value(),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(sender, phase, value, coin_flip, decided)| Envelope {
            sender,
            phase,
            value,
            coin_flip,
            status: if decided {
                Status::Decided
            } else {
                Status::Undecided
            },
        })
}

fn arb_signature() -> impl Strategy<Value = OneTimeSignature> {
    any::<[u8; 32]>().prop_map(OneTimeSignature)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Wire codec: decode(encode(m)) == m for arbitrary messages.
    #[test]
    fn message_codec_round_trip(
        env in arb_envelope(7),
        sig in arb_signature(),
        just in prop::collection::vec((arb_envelope(7), arb_signature()), 0..8),
    ) {
        let cfg = Config::new(7, 2, 5).expect("valid");
        let msg = Message { envelope: env, signature: sig, justification: just };
        let decoded = Message::decode(&msg.encode(), &cfg).expect("own encoding decodes");
        prop_assert_eq!(decoded, msg);
    }

    /// Arbitrary byte soup never panics the decoder and never produces
    /// an out-of-range sender.
    #[test]
    fn decoder_total_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
        let cfg = Config::new(7, 2, 5).expect("valid");
        if let Ok(msg) = Message::decode(&bytes, &cfg) {
            prop_assert!(msg.envelope.sender < 7);
            prop_assert!(msg.envelope.phase >= 1);
        }
    }

    /// Quorum arithmetic: for every valid configuration, two quorums
    /// intersect in more than f senders, and the half-quorum exceeds f.
    #[test]
    fn quorum_lemmas(n in 1usize..60) {
        let Ok(cfg) = Config::evaluation(n) else { return Ok(()); };
        let q = cfg.quorum_min();
        prop_assert!(q <= n, "a quorum must be attainable");
        prop_assert!(2 * q - n > cfg.f(), "quorum intersection contains a correct process");
        prop_assert!(cfg.half_quorum_min() > cfg.f(), "half-quorum defeats f fabricators");
        // σ is monotonically non-increasing in t.
        let mut last = usize::MAX;
        for t in 0..=cfg.f() {
            if cfg.k() + t > cfg.n() { break; }
            let s = cfg.sigma(t);
            prop_assert!(s <= last);
            last = s;
        }
    }

    /// End-to-end (lossless, synchronous): agreement + validity for
    /// random proposal vectors and seeds, n = 4.
    #[test]
    fn synchronous_agreement_and_validity(
        proposals in prop::collection::vec(any::<bool>(), 4),
        seed in 0u64..1000,
    ) {
        let cfg = Config::evaluation(4).expect("valid");
        let rings = KeyRing::trusted_setup(4, 120, seed);
        let mut procs: Vec<Turquois> = rings
            .into_iter()
            .enumerate()
            .map(|(i, ring)| Turquois::new(cfg, i, proposals[i], ring, seed + 31 * i as u64))
            .collect();
        for _ in 0..40 {
            let msgs: Vec<_> = procs
                .iter_mut()
                .map(|p| p.on_tick().expect("keys cover phase").bytes)
                .collect();
            for p in procs.iter_mut() {
                for m in &msgs {
                    p.on_message(m);
                }
            }
            if procs.iter().all(|p| p.decision().is_some()) {
                break;
            }
        }
        let decisions: Vec<Option<bool>> = procs.iter().map(|p| p.decision()).collect();
        prop_assert!(decisions.iter().all(|d| d.is_some()), "termination: {decisions:?}");
        let first = decisions[0].expect("checked");
        prop_assert!(decisions.iter().all(|d| *d == Some(first)), "agreement");
        if proposals.iter().all(|&p| p == proposals[0]) {
            prop_assert_eq!(first, proposals[0], "validity");
        }
    }

    /// Under random per-message loss (messages randomly withheld from
    /// random receivers), safety never breaks and no process panics.
    #[test]
    fn lossy_rounds_preserve_safety(
        proposals in prop::collection::vec(any::<bool>(), 4),
        seed in 0u64..500,
        loss_mask in prop::collection::vec(any::<u16>(), 25),
    ) {
        let cfg = Config::evaluation(4).expect("valid");
        let rings = KeyRing::trusted_setup(4, 120, seed ^ xloss_seed());
        let mut procs: Vec<Turquois> = rings
            .into_iter()
            .enumerate()
            .map(|(i, ring)| Turquois::new(cfg, i, proposals[i], ring, seed + 7 * i as u64))
            .collect();
        for mask in &loss_mask {
            let msgs: Vec<_> = procs
                .iter_mut()
                .map(|p| p.on_tick().expect("keys cover phase").bytes)
                .collect();
            for (recv_idx, p) in procs.iter_mut().enumerate() {
                for (send_idx, m) in msgs.iter().enumerate() {
                    // Bit (recv, send) of the mask decides omission.
                    let bit = (mask >> ((recv_idx * 4 + send_idx) % 16)) & 1;
                    if bit == 0 || recv_idx == send_idx {
                        p.on_message(m);
                    }
                }
            }
        }
        let decided: Vec<bool> = procs
            .iter()
            .filter_map(|p| p.decision())
            .collect();
        if let Some(&first) = decided.first() {
            prop_assert!(decided.iter().all(|&d| d == first), "agreement under loss");
            if proposals.iter().all(|&p| p == proposals[0]) {
                prop_assert_eq!(first, proposals[0], "validity under loss");
            }
        }
    }
}

fn xloss_seed() -> u64 {
    0x1055
}

/// Builds a 4-group, advances p0 to phase 2 and returns a *justified*
/// rebroadcast from p0 (its second same-state tick attaches the
/// explicit-validation bundle) plus a fresh process with an empty store
/// that the bundle alone must convince.
fn justified_rebroadcast(proposals: &[bool], seed: u64) -> (Message, Turquois) {
    let cfg = Config::evaluation(4).expect("valid");
    let rings = KeyRing::trusted_setup(4, 120, seed);
    let mut procs: Vec<Turquois> = rings
        .into_iter()
        .enumerate()
        .map(|(i, ring)| Turquois::new(cfg, i, proposals[i], ring, seed + 13 * i as u64))
        .collect();
    let msgs: Vec<_> = procs
        .iter_mut()
        .map(|p| p.on_tick().expect("keys cover phase").bytes)
        .collect();
    for m in &msgs {
        procs[0].on_message(m);
    }
    assert_eq!(procs[0].phase(), 2, "phase-1 quorum advances p0");
    let _bare = procs[0].on_tick().expect("keys cover phase");
    let justified = procs[0].on_tick().expect("keys cover phase").message;
    assert!(
        !justified.justification.is_empty(),
        "same-state rebroadcast carries the bundle"
    );
    // A receiver that has seen nothing: only the bundle can justify
    // p0's phase-2 envelope.
    let fresh = KeyRing::trusted_setup(4, 120, seed).remove(3);
    (justified, Turquois::new(cfg, 3, proposals[3], fresh, seed + 999))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Truncating a justification bundle can only *reduce* what the
    /// message unlocks: the receiver never advances further on a
    /// truncated bundle than on the full one, and never panics.
    #[test]
    fn truncated_bundles_never_unlock_more(
        proposals in prop::collection::vec(any::<bool>(), 4),
        seed in 0u64..200,
        keep in 0usize..8,
    ) {
        let (full, _) = justified_rebroadcast(&proposals, seed);
        let (_, mut on_full) = justified_rebroadcast(&proposals, seed);
        on_full.on_message(&full.encode());
        let full_phase = on_full.phase();

        let mut truncated = full.clone();
        truncated.justification.truncate(keep.min(truncated.justification.len()));
        let (_, mut on_truncated) = justified_rebroadcast(&proposals, seed);
        on_truncated.on_message(&truncated.encode());
        prop_assert!(
            on_truncated.phase() <= full_phase,
            "truncation unlocked phase {} > {}",
            on_truncated.phase(),
            full_phase
        );
    }

    /// Message counting is per *distinct sender*: a bundle holding one
    /// attachment duplicated k times convinces the receiver of exactly
    /// as much as the single attachment alone.
    #[test]
    fn duplicated_bundle_senders_do_not_inflate_quorums(
        proposals in prop::collection::vec(any::<bool>(), 4),
        seed in 0u64..200,
        copies in 2usize..12,
    ) {
        let (full, _) = justified_rebroadcast(&proposals, seed);
        let first = full.justification[0];

        let mut single = full.clone();
        single.justification = vec![first];
        let (_, mut on_single) = justified_rebroadcast(&proposals, seed);
        let single_receipt = on_single.on_message(&single.encode());

        let mut duplicated = full.clone();
        duplicated.justification = vec![first; copies];
        let (_, mut on_dup) = justified_rebroadcast(&proposals, seed);
        let dup_receipt = on_dup.on_message(&duplicated.encode());

        prop_assert_eq!(on_dup.phase(), on_single.phase(), "duplicates added standing");
        prop_assert_eq!(dup_receipt.outcome, single_receipt.outcome);
        // The receiver still pays one verification per attachment — the
        // duplicates burn the *sender's* airtime, not the quorum math.
        prop_assert_eq!(
            dup_receipt.sig_verifications,
            1 + copies,
            "every attachment is authenticated"
        );
    }

    /// Attachments whose signature was minted for a different phase are
    /// inauthentic (one-time keys bind the phase): the receiver drops
    /// every such attachment and then rejects the now-unjustified
    /// envelope, staying at phase 1.
    #[test]
    fn wrong_phase_signatures_invalidate_the_bundle(
        proposals in prop::collection::vec(any::<bool>(), 4),
        seed in 0u64..200,
        bump in 1u32..4,
    ) {
        let (full, mut fresh) = justified_rebroadcast(&proposals, seed);
        let mut forged = full.clone();
        for (env, _) in &mut forged.justification {
            env.phase += bump;
        }
        let receipt = fresh.on_message(&forged.encode());
        prop_assert!(
            matches!(receipt.outcome, turquois::core::instance::MessageOutcome::SemanticFailed(_)),
            "got {:?}",
            receipt.outcome
        );
        prop_assert_eq!(fresh.phase(), 1, "no catch-up through a forged bundle");
        prop_assert!(fresh.decision().is_none());
    }
}

/// Promoted from `proptest_invariants.proptest-regressions` (seed
/// `0aae7c11…`, "shrinks to n = 1"): `quorum_lemmas` once shrank to the
/// degenerate single-process group, where `f = 0`, the process is its
/// own quorum (`q = 1`), and careless rearrangements of the
/// intersection lemma (`2q - n > f`) or the σ loop bound (`k + t > n`)
/// underflow `usize`. Kept as a named test so the case is documented
/// and runs even if the regression file is lost.
#[test]
fn quorum_lemmas_hold_at_the_degenerate_n1_group() {
    let cfg = Config::evaluation(1).expect("a single process is a valid group");
    assert_eq!(cfg.f(), 0);
    assert_eq!(cfg.k(), 1);
    let q = cfg.quorum_min();
    assert_eq!(q, 1, "the lone process is its own quorum");
    assert!(2 * q - 1 > cfg.f(), "intersection lemma at n = 1");
    assert!(cfg.half_quorum_min() > cfg.f());
    assert_eq!(cfg.sigma(0), 0, "no omissions are survivable with k = n");
}
