//! Property-based tests over the protocol's core invariants.

use proptest::prelude::*;
use turquois::core::config::Config;
use turquois::core::instance::Turquois;
use turquois::core::message::{Envelope, Message, Status};
use turquois::core::{KeyRing, Value};
use turquois::crypto::otss::OneTimeSignature;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Zero),
        Just(Value::One),
        Just(Value::Bot)
    ]
}

fn arb_envelope(n: usize) -> impl Strategy<Value = Envelope> {
    (
        0..n,
        1u32..200,
        arb_value(),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(sender, phase, value, coin_flip, decided)| Envelope {
            sender,
            phase,
            value,
            coin_flip,
            status: if decided {
                Status::Decided
            } else {
                Status::Undecided
            },
        })
}

fn arb_signature() -> impl Strategy<Value = OneTimeSignature> {
    any::<[u8; 32]>().prop_map(OneTimeSignature)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Wire codec: decode(encode(m)) == m for arbitrary messages.
    #[test]
    fn message_codec_round_trip(
        env in arb_envelope(7),
        sig in arb_signature(),
        just in prop::collection::vec((arb_envelope(7), arb_signature()), 0..8),
    ) {
        let cfg = Config::new(7, 2, 5).expect("valid");
        let msg = Message { envelope: env, signature: sig, justification: just };
        let decoded = Message::decode(&msg.encode(), &cfg).expect("own encoding decodes");
        prop_assert_eq!(decoded, msg);
    }

    /// Arbitrary byte soup never panics the decoder and never produces
    /// an out-of-range sender.
    #[test]
    fn decoder_total_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
        let cfg = Config::new(7, 2, 5).expect("valid");
        if let Ok(msg) = Message::decode(&bytes, &cfg) {
            prop_assert!(msg.envelope.sender < 7);
            prop_assert!(msg.envelope.phase >= 1);
        }
    }

    /// Quorum arithmetic: for every valid configuration, two quorums
    /// intersect in more than f senders, and the half-quorum exceeds f.
    #[test]
    fn quorum_lemmas(n in 1usize..60) {
        let Ok(cfg) = Config::evaluation(n) else { return Ok(()); };
        let q = cfg.quorum_min();
        prop_assert!(q <= n, "a quorum must be attainable");
        prop_assert!(2 * q - n > cfg.f(), "quorum intersection contains a correct process");
        prop_assert!(cfg.half_quorum_min() > cfg.f(), "half-quorum defeats f fabricators");
        // σ is monotonically non-increasing in t.
        let mut last = usize::MAX;
        for t in 0..=cfg.f() {
            if cfg.k() + t > cfg.n() { break; }
            let s = cfg.sigma(t);
            prop_assert!(s <= last);
            last = s;
        }
    }

    /// End-to-end (lossless, synchronous): agreement + validity for
    /// random proposal vectors and seeds, n = 4.
    #[test]
    fn synchronous_agreement_and_validity(
        proposals in prop::collection::vec(any::<bool>(), 4),
        seed in 0u64..1000,
    ) {
        let cfg = Config::evaluation(4).expect("valid");
        let rings = KeyRing::trusted_setup(4, 120, seed);
        let mut procs: Vec<Turquois> = rings
            .into_iter()
            .enumerate()
            .map(|(i, ring)| Turquois::new(cfg, i, proposals[i], ring, seed + 31 * i as u64))
            .collect();
        for _ in 0..40 {
            let msgs: Vec<_> = procs
                .iter_mut()
                .map(|p| p.on_tick().expect("keys cover phase").bytes)
                .collect();
            for p in procs.iter_mut() {
                for m in &msgs {
                    p.on_message(m);
                }
            }
            if procs.iter().all(|p| p.decision().is_some()) {
                break;
            }
        }
        let decisions: Vec<Option<bool>> = procs.iter().map(|p| p.decision()).collect();
        prop_assert!(decisions.iter().all(|d| d.is_some()), "termination: {decisions:?}");
        let first = decisions[0].expect("checked");
        prop_assert!(decisions.iter().all(|d| *d == Some(first)), "agreement");
        if proposals.iter().all(|&p| p == proposals[0]) {
            prop_assert_eq!(first, proposals[0], "validity");
        }
    }

    /// Under random per-message loss (messages randomly withheld from
    /// random receivers), safety never breaks and no process panics.
    #[test]
    fn lossy_rounds_preserve_safety(
        proposals in prop::collection::vec(any::<bool>(), 4),
        seed in 0u64..500,
        loss_mask in prop::collection::vec(any::<u16>(), 25),
    ) {
        let cfg = Config::evaluation(4).expect("valid");
        let rings = KeyRing::trusted_setup(4, 120, seed ^ xloss_seed());
        let mut procs: Vec<Turquois> = rings
            .into_iter()
            .enumerate()
            .map(|(i, ring)| Turquois::new(cfg, i, proposals[i], ring, seed + 7 * i as u64))
            .collect();
        for mask in &loss_mask {
            let msgs: Vec<_> = procs
                .iter_mut()
                .map(|p| p.on_tick().expect("keys cover phase").bytes)
                .collect();
            for (recv_idx, p) in procs.iter_mut().enumerate() {
                for (send_idx, m) in msgs.iter().enumerate() {
                    // Bit (recv, send) of the mask decides omission.
                    let bit = (mask >> ((recv_idx * 4 + send_idx) % 16)) & 1;
                    if bit == 0 || recv_idx == send_idx {
                        p.on_message(m);
                    }
                }
            }
        }
        let decided: Vec<bool> = procs
            .iter()
            .filter_map(|p| p.decision())
            .collect();
        if let Some(&first) = decided.first() {
            prop_assert!(decided.iter().all(|&d| d == first), "agreement under loss");
            if proposals.iter().all(|&p| p == proposals[0]) {
                prop_assert_eq!(first, proposals[0], "validity under loss");
            }
        }
    }
}

fn xloss_seed() -> u64 {
    0x1055
}
