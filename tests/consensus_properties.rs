//! Cross-crate integration: the three consensus properties (validity,
//! agreement, termination) for every protocol on the simulated 802.11b
//! network, across fault loads, proposal distributions, and seeds.

use turquois::harness::{FaultLoad, Protocol, ProposalDistribution, Scenario};

fn check(
    protocol: Protocol,
    n: usize,
    dist: ProposalDistribution,
    fault_load: FaultLoad,
    seed: u64,
) {
    let outcome = Scenario::new(protocol, n)
        .proposals(dist)
        .fault_load(fault_load)
        .seed(seed)
        .time_limit(std::time::Duration::from_secs(120))
        .run_once()
        .expect("valid scenario");
    assert!(
        outcome.agreement_holds(),
        "{} n={n} {} {} seed={seed}: agreement violated: {:?}",
        protocol.name(),
        dist.name(),
        fault_load.name(),
        outcome.decisions
    );
    assert!(
        outcome.validity_holds(),
        "{} n={n} {} {} seed={seed}: validity violated",
        protocol.name(),
        dist.name(),
        fault_load.name(),
    );
    assert!(
        outcome.k_reached(),
        "{} n={n} {} {} seed={seed}: only {}/{} decided by {}",
        protocol.name(),
        dist.name(),
        fault_load.name(),
        outcome.decided_correct(),
        outcome.k,
        outcome.end,
    );
}

#[test]
fn turquois_all_fault_loads_n4() {
    for fl in [FaultLoad::FailureFree, FaultLoad::FailStop, FaultLoad::Byzantine] {
        for dist in [ProposalDistribution::Unanimous, ProposalDistribution::Divergent] {
            for seed in 0..4 {
                check(Protocol::Turquois, 4, dist, fl, seed);
            }
        }
    }
}

#[test]
fn turquois_all_fault_loads_n7() {
    for fl in [FaultLoad::FailureFree, FaultLoad::FailStop, FaultLoad::Byzantine] {
        for dist in [ProposalDistribution::Unanimous, ProposalDistribution::Divergent] {
            for seed in 10..13 {
                check(Protocol::Turquois, 7, dist, fl, seed);
            }
        }
    }
}

#[test]
fn turquois_larger_groups() {
    for n in [10, 13, 16] {
        check(
            Protocol::Turquois,
            n,
            ProposalDistribution::Divergent,
            FaultLoad::Byzantine,
            42,
        );
    }
}

#[test]
fn abba_all_fault_loads_n4() {
    for fl in [FaultLoad::FailureFree, FaultLoad::FailStop, FaultLoad::Byzantine] {
        for dist in [ProposalDistribution::Unanimous, ProposalDistribution::Divergent] {
            for seed in 0..3 {
                check(Protocol::Abba, 4, dist, fl, seed);
            }
        }
    }
}

#[test]
fn abba_n7_byzantine() {
    check(
        Protocol::Abba,
        7,
        ProposalDistribution::Divergent,
        FaultLoad::Byzantine,
        5,
    );
}

#[test]
fn bracha_all_fault_loads_n4() {
    for fl in [FaultLoad::FailureFree, FaultLoad::FailStop, FaultLoad::Byzantine] {
        for dist in [ProposalDistribution::Unanimous, ProposalDistribution::Divergent] {
            check(Protocol::Bracha, 4, dist, fl, 1);
        }
    }
}

#[test]
fn bracha_n7_failure_free() {
    check(
        Protocol::Bracha,
        7,
        ProposalDistribution::Divergent,
        FaultLoad::FailureFree,
        3,
    );
}

#[test]
fn turquois_latency_beats_baselines() {
    // The paper's headline: Turquois is fastest, and the gap grows with
    // n. Verified here at n = 7, failure-free, averaged over 5 seeds.
    let mean = |protocol: Protocol| -> f64 {
        let mut total = 0.0;
        for seed in 0..5u64 {
            let outcome = Scenario::new(protocol, 7)
                .seed(seed * 1337)
                .run_once()
                .expect("valid scenario");
            total += outcome.mean_latency_ms().expect("decides");
        }
        total / 5.0
    };
    let turquois = mean(Protocol::Turquois);
    let abba = mean(Protocol::Abba);
    let bracha = mean(Protocol::Bracha);
    assert!(
        turquois < abba && abba < bracha,
        "expected Turquois < ABBA < Bracha, got {turquois:.1} / {abba:.1} / {bracha:.1}"
    );
    assert!(
        bracha > 10.0 * turquois,
        "Bracha should trail by an order of magnitude at n=7: {turquois:.1} vs {bracha:.1}"
    );
}

#[test]
fn decisions_are_timestamped_after_start() {
    let outcome = Scenario::new(Protocol::Turquois, 4)
        .seed(9)
        .run_once()
        .expect("valid scenario");
    for i in 0..outcome.n {
        if let Some(d) = outcome.decisions[i] {
            assert!(d.time >= outcome.start_times[i]);
        }
    }
}
