//! Integration: the §6.1 key-exchange lifecycle — offline epoch 1, a
//! signed epoch-2 distribution mid-protocol, and exhaustion handling.

use turquois::core::config::Config;
use turquois::core::instance::Turquois;
use turquois::core::KeyRing;
use turquois::crypto::hashsig;

#[test]
fn rekey_mid_protocol_keeps_consensus_running() {
    // Tiny first epoch: only 6 phases — enough for a unanimous decision
    // (phase 3) but not for a long divergent run. Extend with epoch 2
    // and run a full divergent consensus.
    let n = 4;
    let cfg = Config::evaluation(n).expect("valid");
    let mut rings: Vec<KeyRing> = KeyRing::trusted_setup(n, 6, 77);
    let mut identities: Vec<hashsig::Keypair> = (0..n)
        .map(|i| hashsig::Keypair::generate(3, 500 + i as u64))
        .collect();

    // Every process prepares its epoch 2 (phases 7..=60) and the
    // bundles cross-install.
    let bundles: Vec<_> = rings
        .iter_mut()
        .zip(identities.iter_mut())
        .map(|(ring, identity)| {
            ring.begin_epoch(54, 900 + ring.id() as u64, identity)
                .expect("identity has leaves")
        })
        .collect();
    for (owner, bundle) in bundles.iter().enumerate() {
        for (i, ring) in rings.iter_mut().enumerate() {
            if i != owner {
                ring.install_epoch(bundle, identities[owner].public_key())
                    .expect("genuine bundle installs");
            }
        }
    }
    for ring in &rings {
        assert_eq!(ring.max_phase(), 60);
    }

    // Divergent proposals; synchronous lossless rounds.
    let mut procs: Vec<Turquois> = rings
        .into_iter()
        .enumerate()
        .map(|(i, ring)| Turquois::new(cfg, i, i % 2 == 1, ring, 77 + i as u64))
        .collect();
    for _ in 0..40 {
        let msgs: Vec<_> = procs
            .iter_mut()
            .map(|p| p.on_tick().expect("epochs cover the phase").bytes)
            .collect();
        for p in procs.iter_mut() {
            for m in &msgs {
                p.on_message(m);
            }
        }
        if procs.iter().all(|p| p.decision().is_some()) {
            break;
        }
    }
    let first = procs[0].decision().expect("decides");
    assert!(procs.iter().all(|p| p.decision() == Some(first)));
}

#[test]
fn key_exhaustion_is_reported_not_panicked() {
    let n = 4;
    let cfg = Config::evaluation(n).expect("valid");
    // Epoch covers only phase 1–2: by phase 3 signing must fail
    // gracefully.
    let rings = KeyRing::trusted_setup(n, 2, 88);
    let mut procs: Vec<Turquois> = rings
        .into_iter()
        .enumerate()
        .map(|(i, ring)| Turquois::new(cfg, i, true, ring, 88 + i as u64))
        .collect();
    let mut exhausted = false;
    for _ in 0..10 {
        let mut msgs = Vec::new();
        for p in procs.iter_mut() {
            match p.on_tick() {
                Ok(out) => msgs.push(out.bytes),
                Err(e) => {
                    exhausted = true;
                    assert!(e.to_string().contains("exhausted"));
                }
            }
        }
        for p in procs.iter_mut() {
            for m in &msgs {
                p.on_message(m);
            }
        }
        if exhausted {
            break;
        }
    }
    assert!(exhausted, "phase 3 must outrun a 2-phase epoch");
}

#[test]
fn identity_key_leaves_bound_the_number_of_epochs() {
    let mut ring = KeyRing::trusted_setup(2, 3, 5).remove(0);
    // Height-1 identity: exactly two signatures.
    let mut identity = hashsig::Keypair::generate(1, 42);
    assert!(ring.begin_epoch(3, 1, &mut identity).is_ok());
    assert!(ring.begin_epoch(3, 2, &mut identity).is_ok());
    assert!(
        ring.begin_epoch(3, 3, &mut identity).is_err(),
        "third epoch exceeds the identity key's one-time leaves"
    );
}
